//! Asynchronous request admission: a bounded queue between request
//! producers and the batched engine.
//!
//! The serving benchmark used to form micro-batches synchronously — chop
//! the replay into fixed windows, score a window, repeat — which couples
//! batch shape to arrival order and has no answer to overload beyond
//! unbounded queueing. This module replaces that with the standard
//! admission-controlled design:
//!
//! * **Bounded queue.** [`AdmissionQueue::submit`] enqueues into a
//!   fixed-depth channel; when the queue is full, `submit` blocks (closed
//!   loop: producers experience backpressure) while
//!   [`AdmissionQueue::try_submit`] *sheds* — the request is rejected
//!   immediately, handed back to the caller, and counted. The queue can
//!   therefore never grow without bound; overload turns into an explicit,
//!   measured rejection rate instead of silent latency collapse.
//! * **Adaptive batch close.** The worker opens a batch on the first
//!   queued request and closes it when either `max_batch` requests have
//!   accumulated **or** the oldest queued request has waited `batch_age`
//!   — whichever comes first. Under load, batches fill and the engine
//!   amortizes its scoring pass; when traffic is sparse the age deadline
//!   bounds the latency a lone request pays for batching.
//! * **Completions out-of-band.** Each served request is reported as a
//!   [`Completion`] carrying submit/admit/finish stamps on the engine's
//!   wall clock, so callers can split total latency into queueing delay
//!   and service time.
//!
//! Shutdown is by channel disconnect: drop every [`AdmissionQueue`] clone
//! and the worker drains what is buffered, then returns its
//! [`AdmissionReport`].
//!
//! ```
//! use cumf_numeric::dense::DenseMatrix;
//! use cumf_serve::admission::{admission_queue, AdmissionConfig};
//! use cumf_serve::engine::{Request, ServeConfig, ServeEngine};
//! use cumf_serve::store::ModelSnapshot;
//! use cumf_telemetry::NOOP;
//!
//! let engine = ServeEngine::builder()
//!     .config(ServeConfig::default().with_k(2))
//!     .model(
//!         "default",
//!         DenseMatrix::identity(4),
//!         ModelSnapshot::new(0, DenseMatrix::identity(4), vec![]),
//!     )
//!     .build()
//!     .unwrap();
//! let (queue, worker, done) = admission_queue(AdmissionConfig::default());
//! for u in 0..4u32 {
//!     queue.submit(Request::known(u as u64, u), engine.now()).unwrap();
//! }
//! drop(queue); // disconnect: the worker drains and returns
//! let report = worker.run(&engine, &NOOP);
//! assert_eq!(report.admitted, 4);
//! assert_eq!(done.iter().count(), 4);
//! ```

use crate::engine::{Query, Recommendation, Request, ServeEngine, UserRef};
use crate::error::ServeError;
use crate::obs::{RequestSpan, ServeObs, SloReport};
use cumf_telemetry::{CounterSample, FootprintReport, LatencyHistogram, MemoryFootprint, Recorder};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Queue depth and batch-close policy.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Requests per micro-batch at most; a batch closes as soon as it
    /// holds this many (floored at 1).
    pub max_batch: usize,
    /// Bounded queue capacity. `try_submit` sheds beyond this; `submit`
    /// blocks.
    pub queue_depth: usize,
    /// Maximum time the first request of a batch waits for company before
    /// the batch closes anyway.
    pub batch_age: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_batch: 64,
            queue_depth: 256,
            batch_age: Duration::from_micros(500),
        }
    }
}

/// A request waiting in the queue, stamped with its submission time on the
/// engine clock.
struct Submitted {
    req: Request,
    submitted_at: f64,
}

/// Why `try_submit` handed a request back.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue is at capacity — the request was shed (and counted).
    Full(Request),
    /// The worker is gone; nothing will ever drain the queue.
    Closed(Request),
}

/// Producer handle: submit requests into the bounded queue. Cloneable —
/// any number of submitter threads may share one queue. Dropping every
/// clone disconnects the worker, which then drains and returns.
#[derive(Clone)]
pub struct AdmissionQueue {
    tx: SyncSender<Submitted>,
    rejected: Arc<AtomicU64>,
    obs: Option<Arc<ServeObs>>,
    /// Bounded channel capacity, kept for footprint reporting.
    depth: usize,
}

impl AdmissionQueue {
    /// Route shed accounting into an engine's observability bundle
    /// (typically [`ServeEngine::obs_arc`]): every request
    /// [`try_submit`](AdmissionQueue::try_submit) sheds is counted in
    /// `serve_shed_total` and spends SLO error budget at its submission
    /// time.
    pub fn with_obs(mut self, obs: Arc<ServeObs>) -> AdmissionQueue {
        self.obs = Some(obs);
        self
    }
    /// Closed-loop submit: blocks while the queue is full (backpressure),
    /// errors only if the worker is gone. `submitted_at` is the request's
    /// timestamp on the engine clock ([`ServeEngine::now`]).
    pub fn submit(&self, req: Request, submitted_at: f64) -> Result<(), Request> {
        self.tx
            .send(Submitted { req, submitted_at })
            .map_err(|e| e.0.req)
    }

    /// Open-loop submit: never blocks. A full queue sheds the request —
    /// it is returned in [`SubmitError::Full`] and the rejection counter
    /// increments — so overload produces a measured reject rate instead
    /// of unbounded queueing.
    pub fn try_submit(&self, req: Request, submitted_at: f64) -> Result<(), SubmitError> {
        match self.tx.try_send(Submitted { req, submitted_at }) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(s)) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.observe_shed(s.submitted_at);
                }
                Err(SubmitError::Full(s.req))
            }
            Err(TrySendError::Disconnected(s)) => Err(SubmitError::Closed(s.req)),
        }
    }

    /// Requests shed so far by [`AdmissionQueue::try_submit`].
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

impl MemoryFootprint for AdmissionQueue {
    /// A worst-case bound, not a live measurement: the bounded channel
    /// can hold at most `queue_depth` request headers. Cold-start rating
    /// histories live on the heap behind those headers and are workload-
    /// dependent, so they are not counted.
    fn footprint(&self) -> FootprintReport {
        FootprintReport::branch(
            "admission_queue",
            vec![FootprintReport::leaf(
                "queued_request_headers",
                (self.depth * std::mem::size_of::<Submitted>()) as u64,
            )],
        )
    }
}

/// One served request, stamped on the engine clock: queueing delay is
/// `admitted_at - submitted_at`, service time `finished_at - admitted_at`.
#[derive(Clone, Debug)]
pub struct Completion {
    /// The engine's response: a recommendation, or the per-request
    /// [`ServeError`] the engine answered with (routing failures and
    /// unknown users fail alone — the rest of the batch is unaffected).
    pub response: Result<Recommendation, ServeError>,
    /// When the producer submitted the request.
    pub submitted_at: f64,
    /// When the worker closed the batch containing it.
    pub admitted_at: f64,
    /// When the engine finished the batch.
    pub finished_at: f64,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// The request's stage-decomposed timing record: queue / cache /
    /// foldin / score / merge / respond durations that telescope to
    /// `finished_at - submitted_at`.
    pub span: RequestSpan,
}

/// Why a batch closed.
enum Close {
    Size,
    Age,
    Drain,
}

/// Consumer side: drains the queue into engine micro-batches. Run it on
/// its own thread (e.g. inside `std::thread::scope`) while producers
/// submit; [`AdmissionWorker::run`] returns when every producer handle
/// has been dropped and the queue is empty.
pub struct AdmissionWorker {
    rx: Receiver<Submitted>,
    done: Sender<Completion>,
    rejected: Arc<AtomicU64>,
    cfg: AdmissionConfig,
}

impl AdmissionWorker {
    /// Serve batches until the queue disconnects; returns the admission
    /// statistics. Completions are sent to the receiver returned by
    /// [`admission_queue`]; if that receiver was dropped, completions are
    /// discarded but serving continues.
    pub fn run(self, engine: &ServeEngine, recorder: &dyn Recorder) -> AdmissionReport {
        let max_batch = self.cfg.max_batch.max(1);
        let mut report = AdmissionReport::new(self.cfg);
        // Each iteration blocks for the first request of the next batch;
        // a recv error means every producer handle is gone and we're done.
        while let Ok(first) = self.rx.recv() {
            let deadline = Instant::now() + self.cfg.batch_age;
            let mut batch = vec![first];
            let close = loop {
                if batch.len() >= max_batch {
                    break Close::Size;
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break Close::Age;
                }
                match self.rx.recv_timeout(remaining) {
                    Ok(s) => batch.push(s),
                    Err(RecvTimeoutError::Timeout) => break Close::Age,
                    Err(RecvTimeoutError::Disconnected) => break Close::Drain,
                }
            };

            let admitted_at = engine.now();
            let mut stamps = Vec::with_capacity(batch.len());
            let mut reqs = Vec::with_capacity(batch.len());
            for s in batch {
                stamps.push(s.submitted_at);
                reqs.push(s.req);
            }
            let (out, trace) = engine.recommend_batch_traced(&reqs, recorder);
            let finished_at = trace.end;

            let n = out.len();
            report.batches += 1;
            report.admitted += n as u64;
            report.scan_bytes += trace.scan_bytes;
            report.score_flops += trace.score_flops;
            report.score_secs += (trace.score_done - trace.foldin_done).max(0.0);
            match close {
                Close::Size => report.closed_by_size += 1,
                Close::Age => report.closed_by_age += 1,
                Close::Drain => report.closed_by_drain += 1,
            }
            for ((submitted_at, response), req) in stamps.into_iter().zip(out).zip(&reqs) {
                report
                    .queue_delay
                    .record_secs((admitted_at - submitted_at).max(0.0));
                let from_cache = response.as_ref().map(|r| r.from_cache).unwrap_or(false);
                if response.is_err() {
                    report.failed += 1;
                }
                let span = RequestSpan::from_batch(
                    &trace,
                    req.id,
                    submitted_at,
                    from_cache,
                    matches!(req.query, Query::User(UserRef::Cold(_))),
                );
                engine.obs().observe_completion(&span);
                let _ = self.done.send(Completion {
                    response,
                    submitted_at,
                    admitted_at,
                    finished_at,
                    batch_size: n,
                    span,
                });
            }
        }
        report.rejected = self.rejected.load(Ordering::Relaxed);
        report.slo = Some(engine.obs().refresh_slo_gauges(engine.now()));
        report
    }
}

/// What the admission worker did over its lifetime.
#[derive(Clone, Debug)]
pub struct AdmissionReport {
    /// The policy the worker ran under.
    pub cfg: AdmissionConfig,
    /// Micro-batches served.
    pub batches: u64,
    /// Requests admitted (= served).
    pub admitted: u64,
    /// Batches closed by reaching `max_batch`.
    pub closed_by_size: u64,
    /// Batches closed by the age deadline.
    pub closed_by_age: u64,
    /// Batches closed by queue disconnect during shutdown drain.
    pub closed_by_drain: u64,
    /// Requests shed by `try_submit` (snapshot at worker exit).
    pub rejected: u64,
    /// Requests admitted but answered with a [`ServeError`].
    pub failed: u64,
    /// Factor bytes the engine's scoring passes streamed over the
    /// worker's lifetime ([`crate::obs::BatchTrace::scan_bytes`] summed
    /// over batches; cache hits contribute nothing).
    pub scan_bytes: u64,
    /// Nominal floating-point operations of the engine's scoring passes
    /// over the worker's lifetime
    /// ([`crate::obs::BatchTrace::score_flops`] summed over batches).
    pub score_flops: u64,
    /// Wall-clock seconds the engine spent inside score stages (the
    /// denominator of [`AdmissionReport::effective_gbps`] and
    /// [`AdmissionReport::effective_gflops`]).
    pub score_secs: f64,
    /// Queueing delay (submit → batch close) distribution.
    pub queue_delay: LatencyHistogram,
    /// SLO summary at worker exit (compliance, breaches, sheds, windowed
    /// burn rates), from the engine's [`crate::obs::SloTracker`].
    pub slo: Option<SloReport>,
}

impl AdmissionReport {
    fn new(cfg: AdmissionConfig) -> AdmissionReport {
        AdmissionReport {
            cfg,
            batches: 0,
            admitted: 0,
            closed_by_size: 0,
            closed_by_age: 0,
            closed_by_drain: 0,
            rejected: 0,
            failed: 0,
            scan_bytes: 0,
            score_flops: 0,
            score_secs: 0.0,
            queue_delay: LatencyHistogram::new(),
            slo: None,
        }
    }

    /// Effective scan bandwidth in GB/s: factor bytes streamed over the
    /// wall-clock seconds the engine spent scoring. 0 when nothing was
    /// scored. "Effective" because cache hits shrink the numerator while
    /// leaving throughput intact — a rising hit ratio shows up as served
    /// QPS outrunning scan bandwidth.
    pub fn effective_gbps(&self) -> f64 {
        if self.score_secs <= 0.0 {
            0.0
        } else {
            self.scan_bytes as f64 / self.score_secs / 1e9
        }
    }

    /// Effective scoring throughput in GFLOP/s: nominal flops (`2·f` per
    /// scored row) over the wall-clock seconds spent scoring. Read next
    /// to [`AdmissionReport::effective_gbps`]: when GB/s sits near the
    /// host's memory bandwidth the scan is bandwidth-bound; when GFLOP/s
    /// plateaus while GB/s has headroom it is compute-bound — which is
    /// what narrower factor formats (FP16/int8) shift.
    pub fn effective_gflops(&self) -> f64 {
        if self.score_secs <= 0.0 {
            0.0
        } else {
            self.score_flops as f64 / self.score_secs / 1e9
        }
    }

    /// Mean requests per served batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.admitted as f64 / self.batches as f64
        }
    }

    /// Export the report as telemetry counters stamped at `time`:
    /// `serve.admission.{admitted,rejected,batches,closed_by_size,
    /// closed_by_age}` plus the `serve.admission.queue_delay.*` histogram
    /// summary.
    pub fn emit(&self, recorder: &dyn Recorder, time: f64) {
        if !recorder.enabled() {
            return;
        }
        for (name, value) in [
            ("serve.admission.admitted", self.admitted as f64),
            ("serve.admission.rejected", self.rejected as f64),
            ("serve.admission.batches", self.batches as f64),
            ("serve.admission.closed_by_size", self.closed_by_size as f64),
            ("serve.admission.closed_by_age", self.closed_by_age as f64),
            ("serve.admission.failed", self.failed as f64),
            ("serve.admission.scan_bytes", self.scan_bytes as f64),
            ("serve.admission.score_flops", self.score_flops as f64),
        ] {
            recorder.counter(CounterSample::new(name, time, value));
        }
        for c in self
            .queue_delay
            .to_counters("serve.admission.queue_delay", time)
        {
            recorder.counter(c);
        }
    }
}

/// Build the queue / worker / completion-stream triple for `cfg`.
///
/// Typical wiring: move the [`AdmissionWorker`] onto a scoped thread with
/// a shared `&ServeEngine`, submit from the current thread (or several),
/// drop the queue, read [`Completion`]s, join the worker for the
/// [`AdmissionReport`].
pub fn admission_queue(
    cfg: AdmissionConfig,
) -> (AdmissionQueue, AdmissionWorker, Receiver<Completion>) {
    let (tx, rx) = sync_channel(cfg.queue_depth.max(1));
    let (done_tx, done_rx) = channel();
    let rejected = Arc::new(AtomicU64::new(0));
    let queue = AdmissionQueue {
        tx,
        rejected: Arc::clone(&rejected),
        obs: None,
        depth: cfg.queue_depth.max(1),
    };
    let worker = AdmissionWorker {
        rx,
        done: done_tx,
        rejected,
        cfg,
    };
    (queue, worker, done_rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use crate::store::ModelSnapshot;
    use cumf_numeric::dense::DenseMatrix;
    use cumf_telemetry::NOOP;

    fn tiny_engine(users: usize) -> ServeEngine {
        let f = 3;
        let mut x = DenseMatrix::zeros(users, f);
        let mut theta = DenseMatrix::zeros(20, f);
        x.fill_with(|| 0.5);
        theta.fill_with(|| 0.25);
        ServeEngine::builder()
            .config(ServeConfig::default().with_k(3))
            .model("default", x, ModelSnapshot::new(0, theta, vec![]))
            .build()
            .unwrap()
    }

    fn req(u: u32) -> Request {
        Request::known(u as u64, u)
    }

    #[test]
    fn batches_close_on_size() {
        let engine = tiny_engine(8);
        let (queue, worker, done) = admission_queue(AdmissionConfig {
            max_batch: 4,
            queue_depth: 16,
            batch_age: Duration::from_secs(60), // never fires
        });
        for u in 0..8 {
            queue.submit(req(u), engine.now()).unwrap();
        }
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        assert_eq!(report.admitted, 8);
        assert_eq!(report.batches, 2);
        assert_eq!(report.closed_by_size, 2);
        assert_eq!(report.rejected, 0);
        let completions: Vec<Completion> = done.iter().collect();
        assert_eq!(completions.len(), 8);
        assert!(completions.iter().all(|c| c.batch_size == 4));
        // Request order is preserved through the queue and within batches.
        let ids: Vec<u64> = completions
            .iter()
            .map(|c| c.response.as_ref().unwrap().request_id)
            .collect();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
        // Stamps are ordered: submit ≤ admit ≤ finish.
        for c in &completions {
            assert!(c.submitted_at <= c.admitted_at);
            assert!(c.admitted_at <= c.finished_at);
        }
    }

    #[test]
    fn lone_request_closes_on_age() {
        let engine = tiny_engine(2);
        let (queue, worker, done) = admission_queue(AdmissionConfig {
            max_batch: 1000,
            queue_depth: 16,
            batch_age: Duration::from_millis(5),
        });
        std::thread::scope(|scope| {
            let engine = &engine;
            let handle = scope.spawn(move || worker.run(engine, &NOOP));
            queue.submit(req(0), engine.now()).unwrap();
            // The worker must answer without the queue disconnecting:
            // batch size 1000 is unreachable, only the age deadline fires.
            let c = done
                .recv_timeout(Duration::from_secs(10))
                .expect("age deadline must close the batch");
            assert_eq!(c.response.as_ref().unwrap().request_id, 0);
            assert_eq!(c.batch_size, 1);
            drop(queue);
            let report = handle.join().unwrap();
            assert_eq!(report.closed_by_age, 1);
            assert_eq!(report.admitted, 1);
        });
    }

    #[test]
    fn overloaded_queue_sheds_instead_of_growing() {
        let engine = tiny_engine(16);
        let depth = 3;
        let (queue, worker, done) = admission_queue(AdmissionConfig {
            max_batch: 64,
            queue_depth: depth,
            batch_age: Duration::from_millis(1),
        });
        // No worker running: the queue fills to exactly `depth`, then
        // every further try_submit is shed and counted.
        let mut accepted = 0;
        let mut shed = 0;
        for u in 0..10 {
            match queue.try_submit(req(u), engine.now()) {
                Ok(()) => accepted += 1,
                Err(SubmitError::Full(r)) => {
                    assert_eq!(r.id, u as u64, "shed request is handed back");
                    shed += 1;
                }
                Err(SubmitError::Closed(_)) => panic!("worker not yet dropped"),
            }
        }
        assert_eq!(accepted, depth);
        assert_eq!(shed, 10 - depth);
        assert_eq!(queue.rejected(), (10 - depth) as u64);
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        assert_eq!(report.admitted, depth as u64);
        assert_eq!(report.rejected, (10 - depth) as u64);
        assert_eq!(done.iter().count(), depth);
    }

    #[test]
    fn submit_after_worker_exit_errors() {
        let engine = tiny_engine(2);
        let (queue, worker, _done) = admission_queue(AdmissionConfig::default());
        drop(worker);
        assert!(queue.submit(req(0), engine.now()).is_err());
        match queue.try_submit(req(1), engine.now()) {
            Err(SubmitError::Closed(r)) => assert_eq!(r.id, 1),
            other => panic!("expected Closed, got {other:?}"),
        }
        // A dead worker is not overload: nothing was counted as shed.
        assert_eq!(queue.rejected(), 0);
    }

    #[test]
    fn completion_spans_telescope_to_e2e_latency() {
        // The tentpole acceptance criterion: a request through admission →
        // sharded scoring → merge → cache carries a span whose stage
        // durations sum (within clock precision) to its e2e latency.
        let f = 3;
        let mut x = DenseMatrix::zeros(8, f);
        let mut theta = DenseMatrix::zeros(24, f);
        x.fill_with(|| 0.5);
        theta.fill_with(|| 0.25);
        let engine = ServeEngine::builder()
            .config(ServeConfig::default().with_k(3).with_shards(3))
            .model("default", x, ModelSnapshot::new(0, theta, vec![]))
            .build()
            .unwrap();
        let (queue, worker, done) = admission_queue(AdmissionConfig {
            max_batch: 4,
            queue_depth: 16,
            batch_age: Duration::from_millis(2),
        });
        for u in 0..8 {
            queue.submit(req(u), engine.now()).unwrap();
        }
        // Serve user 0 twice so the second trip is a cache hit.
        queue.submit(req(0), engine.now()).unwrap();
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        assert_eq!(report.admitted, 9);
        let completions: Vec<Completion> = done.iter().collect();
        for c in &completions {
            let e2e = c.finished_at - c.submitted_at;
            assert!(
                (c.span.stages.total() - e2e).abs() < 1e-9,
                "stages {:?} sum {} != e2e {}",
                c.span.stages,
                c.span.stages.total(),
                e2e
            );
            assert_eq!(c.span.request_id, c.response.as_ref().unwrap().request_id);
            assert_eq!(c.span.batch_size, c.batch_size);
            assert!(c.span.stages.queue >= 0.0);
        }
        // At least one from-cache completion flowed through with the flag.
        assert!(completions.iter().any(|c| c.span.from_cache));
        // Every completion landed in the engine's obs bundle.
        assert_eq!(engine.obs().metrics().request_latency.snapshot().count(), 9);
        assert_eq!(engine.obs().flight().totals().0, 9);
        let slo = report.slo.expect("worker reports SLO state");
        assert_eq!(slo.total, 9);
        assert_eq!(slo.shed, 0);
    }

    #[test]
    fn sheds_spend_slo_budget_through_the_obs_hook() {
        let engine = tiny_engine(4);
        let (queue, worker, _done) = admission_queue(AdmissionConfig {
            max_batch: 64,
            queue_depth: 2,
            batch_age: Duration::from_millis(1),
        });
        let queue = queue.with_obs(engine.obs_arc());
        // No worker running: fill the queue, then shed twice.
        let mut shed = 0;
        for u in 0..4 {
            if queue.try_submit(req(u % 4), engine.now()).is_err() {
                shed += 1;
            }
        }
        assert_eq!(shed, 2);
        assert_eq!(engine.obs().metrics().shed.get(), 2);
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        let slo = report.slo.expect("slo present");
        assert_eq!(slo.shed, 2);
        assert_eq!(slo.total, 2 + 2);
        assert!((slo.compliance - 0.5).abs() < 1e-12);
    }

    #[test]
    fn failed_requests_complete_with_errors_not_aborts() {
        // An unknown user flows through the whole admission path as an
        // Err completion; its batchmates are served normally.
        let engine = tiny_engine(4);
        let (queue, worker, done) = admission_queue(AdmissionConfig {
            max_batch: 3,
            queue_depth: 8,
            batch_age: Duration::from_secs(60),
        });
        queue.submit(req(0), engine.now()).unwrap();
        queue.submit(req(99), engine.now()).unwrap(); // only 4 users exist
        queue.submit(req(1), engine.now()).unwrap();
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        assert_eq!((report.admitted, report.failed), (3, 1));
        let completions: Vec<Completion> = done.iter().collect();
        assert_eq!(completions.len(), 3);
        assert!(completions[0].response.is_ok());
        assert!(matches!(
            completions[1].response.as_ref().unwrap_err(),
            ServeError::UnknownUser { user: 99, .. }
        ));
        assert!(completions[2].response.is_ok());
        // The failed request still carries a telescoping span.
        let c = &completions[1];
        let e2e = c.finished_at - c.submitted_at;
        assert!((c.span.stages.total() - e2e).abs() < 1e-9);
        assert_eq!(c.span.request_id, 99);
    }

    #[test]
    fn report_accounts_scan_bytes_and_effective_bandwidth() {
        let engine = tiny_engine(8); // 20 items × f=3
        let (queue, worker, _done) = admission_queue(AdmissionConfig {
            max_batch: 4,
            queue_depth: 16,
            batch_age: Duration::from_secs(60),
        });
        for u in 0..8 {
            queue.submit(req(u), engine.now()).unwrap();
        }
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        // Two size-closed batches, each one user-chunk pass over Θ:
        // 2 × 20 items × 3 factors × 4 bytes.
        assert_eq!(report.scan_bytes, 2 * 20 * 3 * 4);
        // Flops mirror the bytes: 2·f per scored row, 2 batches of 4
        // users over 20 items each.
        assert_eq!(report.score_flops, 2 * 3 * (2 * 20 * 4));
        assert!(report.score_secs > 0.0);
        assert!(report.effective_gbps() > 0.0);
        assert!(report.effective_gflops() > 0.0);
        // Idle report divides by nothing.
        let idle = AdmissionReport::new(AdmissionConfig::default());
        assert_eq!(idle.effective_gbps(), 0.0);
        assert_eq!(idle.effective_gflops(), 0.0);
    }

    #[test]
    fn queue_footprint_bounds_queued_request_headers() {
        let (queue, _worker, _done) = admission_queue(AdmissionConfig {
            queue_depth: 7,
            ..AdmissionConfig::default()
        });
        let r = queue.footprint();
        assert!(r.verify());
        assert_eq!(r.total_bytes(), 7 * std::mem::size_of::<Submitted>() as u64);
    }

    #[test]
    fn report_emits_admission_counters() {
        let engine = tiny_engine(4);
        let (queue, worker, _done) = admission_queue(AdmissionConfig {
            max_batch: 2,
            queue_depth: 8,
            batch_age: Duration::from_secs(60),
        });
        for u in 0..4 {
            queue.submit(req(u), engine.now()).unwrap();
        }
        drop(queue);
        let report = worker.run(&engine, &NOOP);
        assert_eq!(report.mean_batch(), 2.0);
        let rec = cumf_telemetry::MemoryRecorder::new();
        report.emit(&rec, 1.0);
        let names: Vec<String> = rec
            .counter_samples()
            .iter()
            .map(|c| c.name.to_string())
            .collect();
        assert!(names.contains(&"serve.admission.admitted".to_string()));
        assert!(names.contains(&"serve.admission.rejected".to_string()));
        assert!(names.contains(&"serve.admission.queue_delay.p99".to_string()));
    }
}
