//! Batched top-k scoring: a blocked user×item GEMM reduced through
//! per-user bounded heaps.
//!
//! The score matrix `S = X_batch · Θᵀ (+ priors)` is never materialized.
//! Work is tiled: users are processed in chunks (one rayon task each) and
//! items in blocks; each tile re-reads a Θ-block that fits in cache while
//! streaming the chunk's user rows — the same register/cache-blocking
//! reasoning as the paper's `get_hermitian`, applied to inference. On the
//! FP16 path the Θ-block is widened to `f32` once per tile, so quantized
//! scoring reads half the factor bytes at the cost of one extra scratch
//! buffer per worker.

use crate::store::ModelSnapshot;
use crate::topk::{ScoredItem, TopK};
use cumf_numeric::dense::{dot, DenseMatrix};
use rayon::prelude::*;

/// Tiling and precision knobs for the batched scorer.
#[derive(Clone, Copy, Debug)]
pub struct ScoreConfig {
    /// Items per Θ-block (the cache-resident tile edge). `None` auto-tunes
    /// from the model's feature dimension so the block stays ~100 KiB
    /// regardless of `f` (see [`ScoreConfig::effective_block_items`]);
    /// `Some(n)` is an explicit override.
    pub block_items: Option<usize>,
    /// Users per rayon task.
    pub user_chunk: usize,
    /// Read the FP16 factor copy when the snapshot carries one.
    pub use_fp16: bool,
}

impl Default for ScoreConfig {
    fn default() -> ScoreConfig {
        ScoreConfig {
            block_items: None,
            user_chunk: 32,
            use_fp16: false,
        }
    }
}

impl ScoreConfig {
    /// Auto-tuned Θ-block footprint target, bytes. ~100 KiB is L2-resident
    /// on every device the simulator models, and far larger than the
    /// heap's O(k) working set.
    pub const AUTO_BLOCK_BYTES: usize = 100 * 1024;

    /// Items per Θ-block for a model of feature dimension `f`: the
    /// explicit override when set, otherwise [`Self::AUTO_BLOCK_BYTES`]
    /// divided by the FP32 row footprint `4·f`, clamped to `[16, 4096]`.
    /// At `f = 100` this lands on the 256-item block the scorer always
    /// used; a wide model (`f = 400`) drops to 64 items and a narrow one
    /// (`f = 8`) grows to 3200 — same cache footprint either way.
    ///
    /// ```
    /// use cumf_serve::scorer::ScoreConfig;
    ///
    /// let auto = ScoreConfig::default();
    /// assert_eq!(auto.effective_block_items(100), 256);
    /// assert_eq!(auto.effective_block_items(400), 64);
    /// let fixed = ScoreConfig { block_items: Some(17), ..auto };
    /// assert_eq!(fixed.effective_block_items(400), 17);
    /// ```
    pub fn effective_block_items(&self, f: usize) -> usize {
        match self.block_items {
            Some(n) => n.max(1),
            None => (Self::AUTO_BLOCK_BYTES / (4 * f.max(1))).clamp(16, 4096),
        }
    }
}

/// Factor bytes one [`top_k_batch`] call streams from the snapshot — the
/// analytic mirror of the blocked loop, kept out of the hot path so
/// byte accounting costs nothing per score.
///
/// Each user chunk re-reads every Θ-block once, so the scan traffic is
/// `⌈users / user_chunk⌉ × n_items × f × width`, where `width` is 2 bytes
/// when the FP16 copy is actually read (`use_fp16` set *and* the snapshot
/// carries a copy — the same effective-precision rule the loop applies)
/// and 4 bytes otherwise. Priors and user rows are negligible next to Θ
/// and are not counted.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::scorer::{scan_bytes, ScoreConfig};
/// use cumf_serve::store::ModelSnapshot;
///
/// let snap = ModelSnapshot::new(0, DenseMatrix::zeros(1000, 16), vec![]);
/// let cfg = ScoreConfig { user_chunk: 32, ..ScoreConfig::default() };
/// // 40 users = 2 chunks, each streaming 1000 × 16 × 4 bytes.
/// assert_eq!(scan_bytes(&snap, 40, &cfg), 2 * 1000 * 16 * 4);
/// ```
pub fn scan_bytes(snapshot: &ModelSnapshot, users: usize, cfg: &ScoreConfig) -> u64 {
    let chunk = cfg.user_chunk.max(1);
    let chunks = users.div_ceil(chunk) as u64;
    let width: u64 = if cfg.use_fp16 && snapshot.has_fp16() {
        2
    } else {
        4
    };
    chunks * snapshot.n_items() as u64 * snapshot.f() as u64 * width
}

/// Score every row of `user_factors` against the snapshot's items and
/// return each user's top `k` items, best first.
///
/// Scores are `x_u · θ_v + prior(v)`, accumulated in `f32` in item order —
/// identical arithmetic on the blocked and naive paths, so results are
/// bit-identical to [`naive_top_k`](crate::topk::naive_top_k) over
/// [`score_one`]'s rows.
pub fn top_k_batch(
    snapshot: &ModelSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
) -> Vec<Vec<ScoredItem>> {
    assert_eq!(
        user_factors.cols(),
        snapshot.f(),
        "user factor dimension must match the model"
    );
    let n = snapshot.n_items();
    let f = snapshot.f();
    let users = user_factors.rows();
    let block = cfg.effective_block_items(f);
    let fp16 = cfg.use_fp16 && snapshot.has_fp16();

    // Scratch is only written on the FP16 path (widening a Θ-block to
    // f32); FP32 borrows straight from the matrix, so skip the allocation.
    let scratch_len = if fp16 { block * f } else { 0 };
    let mut heaps: Vec<TopK> = (0..users).map(|_| TopK::new(k)).collect();
    heaps
        .par_chunks_mut(cfg.user_chunk.max(1))
        .enumerate()
        .for_each_init(
            || vec![0.0f32; scratch_len],
            |scratch, (chunk_idx, chunk)| {
                let user0 = chunk_idx * cfg.user_chunk.max(1);
                let mut start = 0;
                while start < n {
                    let len = block.min(n - start);
                    let rows = snapshot.block_rows(start, len, fp16, scratch);
                    for (du, heap) in chunk.iter_mut().enumerate() {
                        let xu = user_factors.row(user0 + du);
                        for j in 0..len {
                            let item = (start + j) as u32;
                            let s = dot(xu, &rows[j * f..(j + 1) * f]) + snapshot.prior(start + j);
                            heap.push(item, s);
                        }
                    }
                    start += len;
                }
            },
        );
    heaps.into_iter().map(TopK::into_sorted).collect()
}

/// Unblocked reference: the full score row for one user (`n` entries, in
/// item order). Tests pair this with [`naive_top_k`](crate::topk::naive_top_k)
/// as ground truth.
pub fn score_one(snapshot: &ModelSnapshot, user_factors: &[f32], fp16: bool) -> Vec<f32> {
    let f = snapshot.f();
    assert_eq!(user_factors.len(), f);
    let n = snapshot.n_items();
    let mut scratch = vec![0.0f32; f];
    (0..n)
        .map(|v| {
            let row = snapshot.block_rows(v, 1, fp16, &mut scratch);
            dot(user_factors, row) + snapshot.prior(v)
        })
        .collect()
}

/// Convenience: top-k for a single user factor vector.
pub fn top_k_one(
    snapshot: &ModelSnapshot,
    user_factors: &[f32],
    k: usize,
    cfg: &ScoreConfig,
) -> Vec<ScoredItem> {
    let m = DenseMatrix::from_vec(1, user_factors.len(), user_factors.to_vec());
    top_k_batch(snapshot, &m, k, cfg).pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::naive_top_k;
    use rand::prelude::*;

    fn random_snapshot(n: usize, f: usize, seed: u64) -> ModelSnapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut theta = DenseMatrix::zeros(n, f);
        theta.fill_with(|| rng.gen_f32() * 2.0 - 1.0);
        let pop: Vec<f32> = (0..n).map(|_| rng.gen_f32() * 0.1).collect();
        ModelSnapshot::new(0, theta, pop)
    }

    fn random_users(u: usize, f: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(u, f);
        x.fill_with(|| rng.gen_f32() * 2.0 - 1.0);
        x
    }

    #[test]
    fn blocked_equals_naive_across_tilings() {
        let snap = random_snapshot(137, 9, 1);
        let users = random_users(11, 9, 2);
        // Reference: naive argsort over the unblocked score rows.
        let want: Vec<Vec<ScoredItem>> = (0..users.rows())
            .map(|u| naive_top_k(&score_one(&snap, users.row(u), false), 10))
            .collect();
        for (block_items, user_chunk) in [(Some(1), 1), (Some(7), 3), (Some(64), 32), (None, 1000)]
        {
            let cfg = ScoreConfig {
                block_items,
                user_chunk,
                use_fp16: false,
            };
            let got = top_k_batch(&snap, &users, 10, &cfg);
            assert_eq!(got, want, "tiling {block_items:?}×{user_chunk}");
        }
    }

    #[test]
    fn fp16_path_differs_only_within_roundoff() {
        let snap = random_snapshot(64, 8, 3).with_fp16();
        let users = random_users(4, 8, 4);
        let cfg32 = ScoreConfig::default();
        let cfg16 = ScoreConfig {
            use_fp16: true,
            ..ScoreConfig::default()
        };
        let full = top_k_batch(&snap, &users, 64, &cfg32);
        let quant = top_k_batch(&snap, &users, 64, &cfg16);
        for (a, b) in full.iter().flatten().zip(quant.iter().flatten()) {
            // Same items may reorder slightly, but every score moves by at
            // most the FP16 roundoff amplified by f=8 accumulation.
            assert!((a.score - b.score).abs() < 2e-2);
        }
    }

    #[test]
    fn top_k_one_matches_batch_row() {
        let snap = random_snapshot(50, 6, 5);
        let users = random_users(3, 6, 6);
        let cfg = ScoreConfig::default();
        let batch = top_k_batch(&snap, &users, 5, &cfg);
        for (u, row) in batch.iter().enumerate() {
            assert_eq!(&top_k_one(&snap, users.row(u), 5, &cfg), row);
        }
    }

    #[test]
    fn priors_shift_the_ranking() {
        // Two identical items; only the prior separates them.
        let theta = DenseMatrix::from_vec(2, 1, vec![1.0, 1.0]);
        let snap = ModelSnapshot::new(0, theta, vec![0.0, 1.0]);
        let top = top_k_one(&snap, &[1.0], 2, &ScoreConfig::default());
        assert_eq!(top[0].item, 1, "prior must break the tie");
        assert_eq!(top[0].score, 2.0);
    }

    #[test]
    fn auto_block_targets_100kib_and_clamps() {
        let auto = ScoreConfig::default();
        // 100 KiB / (4·f), so narrow models take bigger blocks…
        assert_eq!(auto.effective_block_items(100), 256);
        assert_eq!(auto.effective_block_items(50), 512);
        // …and the range is clamped at both ends.
        assert_eq!(auto.effective_block_items(1), 4096);
        assert_eq!(auto.effective_block_items(100_000), 16);
        // Explicit override wins, floored at 1.
        let fixed = ScoreConfig {
            block_items: Some(0),
            ..auto
        };
        assert_eq!(fixed.effective_block_items(100), 1);
    }

    #[test]
    fn scan_bytes_halves_on_the_effective_fp16_path() {
        let plain = random_snapshot(100, 8, 9);
        let cfg32 = ScoreConfig::default();
        // 33 users at user_chunk=32 ⇒ 2 chunks over 100×8 f32 rows.
        assert_eq!(scan_bytes(&plain, 33, &cfg32), 2 * 100 * 8 * 4);
        assert_eq!(scan_bytes(&plain, 0, &cfg32), 0, "no users, no scan");
        let cfg16 = ScoreConfig {
            use_fp16: true,
            ..cfg32
        };
        // FP16 requested but absent: the loop falls back to FP32 reads and
        // the accounting must agree.
        assert_eq!(scan_bytes(&plain, 33, &cfg16), 2 * 100 * 8 * 4);
        let quant = random_snapshot(100, 8, 9).with_fp16();
        assert_eq!(scan_bytes(&quant, 33, &cfg16), 2 * 100 * 8 * 2);
    }

    #[test]
    fn k_larger_than_catalog_returns_all() {
        let snap = random_snapshot(7, 4, 8);
        let top = top_k_one(&snap, &[0.5; 4], 100, &ScoreConfig::default());
        assert_eq!(top.len(), 7);
    }
}
