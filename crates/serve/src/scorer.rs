//! Batched top-k scoring: a blocked user×item GEMM reduced through
//! per-user bounded heaps.
//!
//! The score matrix `S = X_batch · Θᵀ (+ priors)` is never materialized.
//! Work is tiled: users are processed in chunks (one rayon task each) and
//! items in blocks; each tile re-reads a Θ-block that fits in cache while
//! streaming the chunk's user rows — the same register/cache-blocking
//! reasoning as the paper's `get_hermitian`, applied to inference. Inside
//! a tile the arithmetic is the register-blocked microkernel of
//! [`cumf_numeric::kernel`]: [`kernel::score_tile`] scores
//! [`kernel::TILE_USERS`] users per Θ pass with [`kernel::LANES`]
//! accumulator lanes each, and on the FP16 path
//! [`kernel::score_tile_f16`] fuses the f16→f32 widen into that loop — no
//! scratch widening pass, each Θ chunk decoded once per `TILE_USERS`
//! users. The kernel's fixed lane order is the determinism contract:
//! every scoring surface (blocked, sharded, approximate, and the
//! [`score_one`] reference) reduces through the same lanes, so they stay
//! bit-identical to each other by construction.
//!
//! Since the two-stage retrieval change the scorer also carries an
//! *approximate* mode ([`Retrieval::Approx`]): when the snapshot has a
//! [`crate::ann::CentroidIndex`], each user scores `k_clusters` centroids,
//! scans only the members of the top `n_probe` clusters (optionally from
//! the int8 copy), and rescores the surviving shortlist exactly in FP32 —
//! trading recall for an order-of-magnitude cut in scan bytes. With
//! `n_probe == k_clusters` and no quantization the approximate path
//! covers every item with identical arithmetic, so it is bit-identical to
//! [`Retrieval::Exact`] (property-test-enforced).

use crate::ann::CentroidIndex;
use crate::query::Explanation;
use crate::store::ModelSnapshot;
use crate::topk::{ScoredItem, TopK};
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::kernel;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shortlist precision for [`Retrieval::Approx`]'s cluster-member scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QuantMode {
    /// Scan probed members in FP32 — fewer items, full precision, no
    /// rescore pass needed.
    None,
    /// Scan probed members from the snapshot's int8 copy (¼ of the FP32
    /// bytes), then rescore the shortlist exactly in FP32. Falls back to
    /// [`QuantMode::None`] when the snapshot carries no int8 copy.
    Int8,
}

/// Retrieval mode: how much of the catalog a request's scoring pass
/// actually reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Retrieval {
    /// Scan every item row — the exact blocked GEMM path.
    #[default]
    Exact,
    /// Two-stage approximate retrieval: probe the snapshot's centroid
    /// index, scan only the top `n_probe` clusters' members (per
    /// `quant`), rescore the shortlist exactly in FP32. Falls back to
    /// [`Retrieval::Exact`] when the snapshot carries no index (counted
    /// per model as `serve_ann_fallback_total`).
    Approx {
        /// Clusters scanned per user, clamped to `[1, k_clusters]`.
        n_probe: usize,
        /// Precision of the cluster-member scan.
        quant: QuantMode,
    },
}

impl Retrieval {
    /// Whether this is the exact full-scan mode.
    pub fn is_exact(&self) -> bool {
        matches!(self, Retrieval::Exact)
    }
}

/// Measured work of one scoring pass. The exact path fills only `bytes`
/// (from the closed-form [`scan_bytes`] model); the approximate path
/// counts its actual data-dependent traffic, which is what flows into
/// `serve_scan_bytes_total`, the `serve_ann_*` counters, and
/// `AdmissionReport::effective_gbps`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Factor bytes the pass streamed (centroids + member rows + rescore
    /// rows on the approximate path; the blocked Θ walk on the exact
    /// path).
    pub bytes: u64,
    /// Clusters probed, summed over users (0 on the exact path).
    pub probed_clusters: u64,
    /// Item rows scored in stage 2, summed over users. On the exact path
    /// this is the full `n_items × users` scan.
    pub candidates: u64,
    /// Shortlist rows rescored exactly in FP32, summed over users
    /// (nonzero only on the int8 approximate path).
    pub rescored: u64,
    /// Nominal floating-point operations of the pass: `2·f` per scored
    /// row (one multiply + one add per coordinate), covering the centroid
    /// probe, the stage-2 scan, and the rescore. Paired with the
    /// score-stage seconds this yields effective GFLOP/s, the
    /// compute-side twin of `effective_gbps`.
    pub flops: u64,
}

/// Tiling and precision knobs for the batched scorer.
#[derive(Clone, Copy, Debug)]
pub struct ScoreConfig {
    /// Items per Θ-block (the cache-resident tile edge). `None` auto-tunes
    /// from the model's feature dimension so the block stays ~100 KiB
    /// regardless of `f` (see [`ScoreConfig::effective_block_items`]);
    /// `Some(n)` is an explicit override.
    pub block_items: Option<usize>,
    /// Users per rayon task.
    pub user_chunk: usize,
    /// Read the FP16 factor copy when the snapshot carries one (exact
    /// path only; the approximate shortlist scan uses `retrieval`'s
    /// [`QuantMode`] instead).
    pub use_fp16: bool,
    /// Exact full scan, or two-stage approximate retrieval (see
    /// [`Retrieval`]).
    pub retrieval: Retrieval,
}

impl Default for ScoreConfig {
    fn default() -> ScoreConfig {
        ScoreConfig {
            block_items: None,
            user_chunk: 32,
            use_fp16: false,
            retrieval: Retrieval::Exact,
        }
    }
}

impl ScoreConfig {
    /// Auto-tuned Θ-block footprint target, bytes. ~100 KiB is L2-resident
    /// on every device the simulator models, and far larger than the
    /// heap's O(k) working set.
    pub const AUTO_BLOCK_BYTES: usize = 100 * 1024;

    /// Items per Θ-block for a model of feature dimension `f`: the
    /// explicit override when set, otherwise [`Self::AUTO_BLOCK_BYTES`]
    /// divided by the FP32 row footprint `4·f`, clamped to `[16, 4096]`.
    /// At `f = 100` this lands on the 256-item block the scorer always
    /// used; a wide model (`f = 400`) drops to 64 items and a narrow one
    /// (`f = 8`) grows to 3200 — same cache footprint either way.
    ///
    /// ```
    /// use cumf_serve::scorer::ScoreConfig;
    ///
    /// let auto = ScoreConfig::default();
    /// assert_eq!(auto.effective_block_items(100), 256);
    /// assert_eq!(auto.effective_block_items(400), 64);
    /// let fixed = ScoreConfig { block_items: Some(17), ..auto };
    /// assert_eq!(fixed.effective_block_items(400), 17);
    /// ```
    pub fn effective_block_items(&self, f: usize) -> usize {
        match self.block_items {
            Some(n) => n.max(1),
            None => (Self::AUTO_BLOCK_BYTES / (4 * f.max(1))).clamp(16, 4096),
        }
    }
}

/// Factor bytes one [`top_k_batch`] call streams from the snapshot — the
/// analytic mirror of the blocked loop, kept out of the hot path so
/// byte accounting costs nothing per score.
///
/// Each user chunk re-reads every Θ-block once, so the scan traffic is
/// `⌈users / user_chunk⌉ × n_items × f × width`, where `width` is 2 bytes
/// when the FP16 copy is actually read (`use_fp16` set *and* the snapshot
/// carries a copy — the same effective-precision rule the loop applies)
/// and 4 bytes otherwise. Priors and user rows are negligible next to Θ
/// and are not counted.
///
/// ```
/// use cumf_numeric::dense::DenseMatrix;
/// use cumf_serve::scorer::{scan_bytes, ScoreConfig};
/// use cumf_serve::store::ModelSnapshot;
///
/// let snap = ModelSnapshot::new(0, DenseMatrix::zeros(1000, 16), vec![]);
/// let cfg = ScoreConfig { user_chunk: 32, ..ScoreConfig::default() };
/// // 40 users = 2 chunks, each streaming 1000 × 16 × 4 bytes.
/// assert_eq!(scan_bytes(&snap, 40, &cfg), 2 * 1000 * 16 * 4);
/// ```
pub fn scan_bytes(snapshot: &ModelSnapshot, users: usize, cfg: &ScoreConfig) -> u64 {
    let chunk = cfg.user_chunk.max(1);
    let chunks = users.div_ceil(chunk) as u64;
    let width: u64 = if cfg.use_fp16 && snapshot.has_fp16() {
        2
    } else {
        4
    };
    chunks * snapshot.n_items() as u64 * snapshot.f() as u64 * width
}

/// Score every row of `user_factors` against the snapshot's items and
/// return each user's top `k` items, best first.
///
/// Honors `cfg.retrieval`: [`Retrieval::Exact`] (or an `Approx` request
/// against a snapshot with no centroid index) runs the blocked full scan;
/// [`Retrieval::Approx`] runs the two-stage probe/scan/rescore path. This
/// is [`top_k_batch_stats`] with the [`ScanStats`] dropped.
///
/// On the exact path scores are `x_u · θ_v + prior(v)`, with the dot
/// evaluated in [`kernel`]'s fixed lane order on the blocked and naive
/// paths alike, so results are bit-identical to
/// [`naive_top_k`](crate::topk::naive_top_k) over [`score_one`]'s rows.
pub fn top_k_batch(
    snapshot: &ModelSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
) -> Vec<Vec<ScoredItem>> {
    top_k_batch_stats(snapshot, user_factors, k, cfg).0
}

/// [`top_k_batch`] plus the measured [`ScanStats`] of the pass — the
/// entry point the shard scatter-gather uses so byte accounting reflects
/// what the approximate path actually read rather than the closed-form
/// full-scan model.
pub fn top_k_batch_stats(
    snapshot: &ModelSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
) -> (Vec<Vec<ScoredItem>>, ScanStats) {
    assert_eq!(
        user_factors.cols(),
        snapshot.f(),
        "user factor dimension must match the model"
    );
    if let Retrieval::Approx { n_probe, quant } = cfg.retrieval {
        if let Some(index) = snapshot.ann() {
            return top_k_batch_approx(snapshot, index, user_factors, k, n_probe, quant, cfg);
        }
    }
    let users = user_factors.rows();
    let rows = top_k_batch_exact(snapshot, user_factors, k, cfg);
    let candidates = snapshot.n_items() as u64 * users as u64;
    let stats = ScanStats {
        bytes: scan_bytes(snapshot, users, cfg),
        probed_clusters: 0,
        candidates,
        rescored: 0,
        flops: 2 * snapshot.f() as u64 * candidates,
    };
    (rows, stats)
}

/// Two-stage approximate retrieval: per user, rank the `k_clusters`
/// centroids, scan the members of the top `n_probe` clusters (from the
/// int8 copy when requested and present, FP32 otherwise), then — on the
/// int8 path — rescore an oversampled `4·k` shortlist exactly in FP32.
/// The FP32 member scan pushes straight into the final heap with the same
/// `dot + prior` arithmetic — [`kernel::dot_lanes`] over a borrowed row —
/// as the exact scan, which is what makes the full-probe/no-quant case
/// bit-identical to [`Retrieval::Exact`].
fn top_k_batch_approx(
    snapshot: &ModelSnapshot,
    index: &CentroidIndex,
    user_factors: &DenseMatrix,
    k: usize,
    n_probe: usize,
    quant: QuantMode,
    cfg: &ScoreConfig,
) -> (Vec<Vec<ScoredItem>>, ScanStats) {
    let f = snapshot.f();
    let users = user_factors.rows();
    let chunk = cfg.user_chunk.max(1);
    let int8 = match quant {
        QuantMode::Int8 => snapshot.int8(),
        QuantMode::None => None,
    };
    // Oversample the int8 shortlist so quantization roundoff near the
    // k-th score boundary rarely evicts a true top-k item before the
    // exact rescore can save it.
    let shortlist = (4 * k).max(k).max(1);
    let probed = AtomicU64::new(0);
    let candidates = AtomicU64::new(0);
    let rescored = AtomicU64::new(0);
    // Priors borrowed once for the whole pass; empty means "add 0".
    let priors = snapshot.popularity();
    let prior = |v: usize| if priors.is_empty() { 0.0 } else { priors[v] };

    let mut heaps: Vec<TopK> = (0..users).map(|_| TopK::new(k)).collect();
    heaps
        .par_chunks_mut(chunk)
        .enumerate()
        .for_each(|(chunk_idx, chunk_heaps)| {
            let user0 = chunk_idx * chunk;
            let (mut p, mut c, mut r) = (0u64, 0u64, 0u64);
            for (du, heap) in chunk_heaps.iter_mut().enumerate() {
                let xu = user_factors.row(user0 + du);
                let clusters = index.probe(xu, n_probe);
                p += clusters.len() as u64;
                match int8 {
                    Some(q) => {
                        let mut pre = TopK::new(shortlist);
                        for &cluster in &clusters {
                            for &item in index.members(cluster as usize) {
                                let v = item as usize;
                                let s = q.dot(v, xu) + prior(v);
                                pre.push(item, s);
                                c += 1;
                            }
                        }
                        for cand in pre.into_sorted() {
                            let v = cand.item as usize;
                            let s = kernel::dot_lanes(xu, snapshot.item_row(v)) + prior(v);
                            heap.push(cand.item, s);
                            r += 1;
                        }
                    }
                    None => {
                        for &cluster in &clusters {
                            for &item in index.members(cluster as usize) {
                                let v = item as usize;
                                let s = kernel::dot_lanes(xu, snapshot.item_row(v)) + prior(v);
                                heap.push(item, s);
                                c += 1;
                            }
                        }
                    }
                }
            }
            probed.fetch_add(p, Ordering::Relaxed);
            candidates.fetch_add(c, Ordering::Relaxed);
            rescored.fetch_add(r, Ordering::Relaxed);
        });

    let probed = probed.into_inner();
    let candidates = candidates.into_inner();
    let rescored = rescored.into_inner();
    // Measured traffic: every user reads all k_clusters centroid rows for
    // the probe, stage 2 reads each candidate row at the scan width
    // (1 byte/coord int8, 4 FP32), and the rescore re-reads shortlist
    // rows in FP32.
    let width: u64 = if int8.is_some() { 1 } else { 4 };
    let probe_dots = users as u64 * index.k_clusters() as u64;
    let bytes = probe_dots * f as u64 * 4 + candidates * f as u64 * width + rescored * f as u64 * 4;
    let stats = ScanStats {
        bytes,
        probed_clusters: probed,
        candidates,
        rescored,
        flops: 2 * f as u64 * (probe_dots + candidates + rescored),
    };
    (heaps.into_iter().map(TopK::into_sorted).collect(), stats)
}

/// The exact blocked full-scan kernel behind [`top_k_batch`].
///
/// Each worker owns one `chunk × block` score tile that
/// [`kernel::score_tile`] (or, on the FP16 path,
/// [`kernel::score_tile_f16`] with the widen fused into the loop — no
/// scratch widening pass) fills per Θ-block; priors are then added from a
/// slice borrowed once per tile while the scores drain into the per-user
/// heaps.
fn top_k_batch_exact(
    snapshot: &ModelSnapshot,
    user_factors: &DenseMatrix,
    k: usize,
    cfg: &ScoreConfig,
) -> Vec<Vec<ScoredItem>> {
    let n = snapshot.n_items();
    let f = snapshot.f();
    let users = user_factors.rows();
    let block = cfg.effective_block_items(f);
    let chunk = cfg.user_chunk.max(1);
    let fp16_rows = if cfg.use_fp16 {
        snapshot.f16_factors()
    } else {
        None
    };
    let theta = snapshot.item_factors().as_slice();
    let priors = snapshot.popularity();
    let x = user_factors.as_slice();

    let tile_len = chunk.min(users.max(1)) * block;
    let mut heaps: Vec<TopK> = (0..users).map(|_| TopK::new(k)).collect();
    heaps.par_chunks_mut(chunk).enumerate().for_each_init(
        || vec![0.0f32; tile_len],
        |scores, (chunk_idx, chunk_heaps)| {
            let user0 = chunk_idx * chunk;
            let cu = chunk_heaps.len();
            let xs = &x[user0 * f..(user0 + cu) * f];
            let mut start = 0;
            while start < n {
                let len = block.min(n - start);
                match fp16_rows {
                    Some(q) => kernel::score_tile_f16(
                        xs,
                        cu,
                        &q[start * f..(start + len) * f],
                        len,
                        f,
                        scores,
                    ),
                    None => kernel::score_tile(
                        xs,
                        cu,
                        &theta[start * f..(start + len) * f],
                        len,
                        f,
                        scores,
                    ),
                }
                let tile_priors = if priors.is_empty() {
                    None
                } else {
                    Some(&priors[start..start + len])
                };
                for (du, heap) in chunk_heaps.iter_mut().enumerate() {
                    let row = &scores[du * len..(du + 1) * len];
                    match tile_priors {
                        Some(p) => {
                            for (j, (&s, &pr)) in row.iter().zip(p).enumerate() {
                                heap.push((start + j) as u32, s + pr);
                            }
                        }
                        None => {
                            for (j, &s) in row.iter().enumerate() {
                                // The `+ 0.0` is the absent prior: it
                                // normalizes a −0.0 dot to +0.0 exactly
                                // like the reference path's `+ prior(v)`.
                                heap.push((start + j) as u32, s + 0.0);
                            }
                        }
                    }
                }
                start += len;
            }
        },
    );
    heaps.into_iter().map(TopK::into_sorted).collect()
}

/// Unblocked reference: the full score row for one user (`n` entries, in
/// item order). Tests pair this with [`naive_top_k`](crate::topk::naive_top_k)
/// as ground truth. It routes through the same [`kernel`] dots as the
/// blocked path — [`kernel::dot_lanes`] on FP32 rows, [`kernel::dot_f16`]
/// on the FP16 copy — so the bit-identity contract holds by construction,
/// not by accident.
pub fn score_one(snapshot: &ModelSnapshot, user_factors: &[f32], fp16: bool) -> Vec<f32> {
    let f = snapshot.f();
    assert_eq!(user_factors.len(), f);
    let n = snapshot.n_items();
    let f16_rows = if fp16 { snapshot.f16_factors() } else { None };
    match f16_rows {
        Some(q) => (0..n)
            .map(|v| kernel::dot_f16(user_factors, &q[v * f..(v + 1) * f]) + snapshot.prior(v))
            .collect(),
        None => (0..n)
            .map(|v| kernel::dot_lanes(user_factors, snapshot.item_row(v)) + snapshot.prior(v))
            .collect(),
    }
}

/// Per-factor explanation of one (query, item) score: the `q[j]·θ_v[j]`
/// products in factor order plus the item's prior, alongside the exact
/// served score.
///
/// The served score is `kernel::dot_lanes(q, θ_v) + prior` — the same
/// arithmetic as every other scoring surface, so it is bit-identical to
/// the score a top-k pass would assign the item. The explanation terms
/// sum in plain factor order, which reassociates the lane reduction, so
/// [`Explanation::score`] matches the served score only to within FP32
/// roundoff (≤ 1e-6 at serving dimensions, property-test-enforced).
pub fn explain_one(snapshot: &ModelSnapshot, query: &[f32], item: usize) -> (Explanation, f32) {
    let f = snapshot.f();
    assert_eq!(query.len(), f, "query dimension must match the model");
    assert!(item < snapshot.n_items(), "item out of range");
    let row = snapshot.item_row(item);
    let terms = query.iter().zip(row).map(|(&a, &b)| a * b).collect();
    let prior = snapshot.prior(item);
    let score = kernel::dot_lanes(query, row) + prior;
    (Explanation { terms, prior }, score)
}

/// Convenience: top-k for a single user factor vector.
pub fn top_k_one(
    snapshot: &ModelSnapshot,
    user_factors: &[f32],
    k: usize,
    cfg: &ScoreConfig,
) -> Vec<ScoredItem> {
    let m = DenseMatrix::from_vec(1, user_factors.len(), user_factors.to_vec());
    top_k_batch(snapshot, &m, k, cfg).pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::naive_top_k;
    use rand::prelude::*;

    fn random_snapshot(n: usize, f: usize, seed: u64) -> ModelSnapshot {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut theta = DenseMatrix::zeros(n, f);
        theta.fill_with(|| rng.gen_f32() * 2.0 - 1.0);
        let pop: Vec<f32> = (0..n).map(|_| rng.gen_f32() * 0.1).collect();
        ModelSnapshot::new(0, theta, pop)
    }

    fn random_users(u: usize, f: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = DenseMatrix::zeros(u, f);
        x.fill_with(|| rng.gen_f32() * 2.0 - 1.0);
        x
    }

    #[test]
    fn blocked_equals_naive_across_tilings() {
        let snap = random_snapshot(137, 9, 1);
        let users = random_users(11, 9, 2);
        // Reference: naive argsort over the unblocked score rows.
        let want: Vec<Vec<ScoredItem>> = (0..users.rows())
            .map(|u| naive_top_k(&score_one(&snap, users.row(u), false), 10))
            .collect();
        for (block_items, user_chunk) in [(Some(1), 1), (Some(7), 3), (Some(64), 32), (None, 1000)]
        {
            let cfg = ScoreConfig {
                block_items,
                user_chunk,
                ..ScoreConfig::default()
            };
            let got = top_k_batch(&snap, &users, 10, &cfg);
            assert_eq!(got, want, "tiling {block_items:?}×{user_chunk}");
        }
    }

    #[test]
    fn fp16_path_differs_only_within_roundoff() {
        let snap = random_snapshot(64, 8, 3).with_fp16();
        let users = random_users(4, 8, 4);
        let cfg32 = ScoreConfig::default();
        let cfg16 = ScoreConfig {
            use_fp16: true,
            ..ScoreConfig::default()
        };
        let full = top_k_batch(&snap, &users, 64, &cfg32);
        let quant = top_k_batch(&snap, &users, 64, &cfg16);
        for (a, b) in full.iter().flatten().zip(quant.iter().flatten()) {
            // Same items may reorder slightly, but every score moves by at
            // most the FP16 roundoff amplified by f=8 accumulation.
            assert!((a.score - b.score).abs() < 2e-2);
        }
    }

    #[test]
    fn top_k_one_matches_batch_row() {
        let snap = random_snapshot(50, 6, 5);
        let users = random_users(3, 6, 6);
        let cfg = ScoreConfig::default();
        let batch = top_k_batch(&snap, &users, 5, &cfg);
        for (u, row) in batch.iter().enumerate() {
            assert_eq!(&top_k_one(&snap, users.row(u), 5, &cfg), row);
        }
    }

    #[test]
    fn priors_shift_the_ranking() {
        // Two identical items; only the prior separates them.
        let theta = DenseMatrix::from_vec(2, 1, vec![1.0, 1.0]);
        let snap = ModelSnapshot::new(0, theta, vec![0.0, 1.0]);
        let top = top_k_one(&snap, &[1.0], 2, &ScoreConfig::default());
        assert_eq!(top[0].item, 1, "prior must break the tie");
        assert_eq!(top[0].score, 2.0);
    }

    #[test]
    fn auto_block_targets_100kib_and_clamps() {
        let auto = ScoreConfig::default();
        // 100 KiB / (4·f), so narrow models take bigger blocks…
        assert_eq!(auto.effective_block_items(100), 256);
        assert_eq!(auto.effective_block_items(50), 512);
        // …and the range is clamped at both ends.
        assert_eq!(auto.effective_block_items(1), 4096);
        assert_eq!(auto.effective_block_items(100_000), 16);
        // Explicit override wins, floored at 1.
        let fixed = ScoreConfig {
            block_items: Some(0),
            ..auto
        };
        assert_eq!(fixed.effective_block_items(100), 1);
    }

    #[test]
    fn scan_bytes_halves_on_the_effective_fp16_path() {
        let plain = random_snapshot(100, 8, 9);
        let cfg32 = ScoreConfig::default();
        // 33 users at user_chunk=32 ⇒ 2 chunks over 100×8 f32 rows.
        assert_eq!(scan_bytes(&plain, 33, &cfg32), 2 * 100 * 8 * 4);
        assert_eq!(scan_bytes(&plain, 0, &cfg32), 0, "no users, no scan");
        let cfg16 = ScoreConfig {
            use_fp16: true,
            ..cfg32
        };
        // FP16 requested but absent: the loop falls back to FP32 reads and
        // the accounting must agree.
        assert_eq!(scan_bytes(&plain, 33, &cfg16), 2 * 100 * 8 * 4);
        let quant = random_snapshot(100, 8, 9).with_fp16();
        assert_eq!(scan_bytes(&quant, 33, &cfg16), 2 * 100 * 8 * 2);
    }

    #[test]
    fn k_larger_than_catalog_returns_all() {
        let snap = random_snapshot(7, 4, 8);
        let top = top_k_one(&snap, &[0.5; 4], 100, &ScoreConfig::default());
        assert_eq!(top.len(), 7);
    }

    #[test]
    fn explain_terms_sum_to_the_served_score() {
        let snap = random_snapshot(30, 8, 20);
        let users = random_users(1, 8, 21);
        let q = users.row(0);
        let (e, score) = explain_one(&snap, q, 7);
        assert_eq!(e.terms.len(), 8);
        assert_eq!(e.prior, snap.prior(7));
        // Factor-order summation reassociates the lane reduction, so the
        // explained total matches to roundoff, not bits…
        assert!((e.score() - score).abs() < 1e-6);
        // …while the served score itself is bit-identical to the
        // reference scoring surface.
        assert_eq!(score, score_one(&snap, q, false)[7]);
    }

    fn approx_cfg(n_probe: usize, quant: QuantMode) -> ScoreConfig {
        ScoreConfig {
            retrieval: Retrieval::Approx { n_probe, quant },
            ..ScoreConfig::default()
        }
    }

    #[test]
    fn full_probe_unquantized_approx_is_bit_identical_to_exact() {
        use crate::ann::AnnParams;
        let params = AnnParams {
            k_clusters: 8,
            ..AnnParams::default()
        };
        let snap = random_snapshot(120, 7, 10).with_ann(params);
        let users = random_users(9, 7, 11);
        let exact = top_k_batch(&snap, &users, 10, &ScoreConfig::default());
        let approx = top_k_batch(&snap, &users, 10, &approx_cfg(8, QuantMode::None));
        assert_eq!(exact, approx, "full probe + FP32 must cover every item");
    }

    #[test]
    fn approx_without_an_index_falls_back_to_the_exact_scan() {
        let snap = random_snapshot(60, 5, 12);
        let users = random_users(4, 5, 13);
        let cfg = approx_cfg(2, QuantMode::Int8);
        let (rows, stats) = top_k_batch_stats(&snap, &users, 5, &cfg);
        assert_eq!(rows, top_k_batch(&snap, &users, 5, &ScoreConfig::default()));
        assert_eq!(stats.probed_clusters, 0, "fallback never probes");
        assert_eq!(stats.candidates, 60 * 4);
        assert_eq!(stats.bytes, scan_bytes(&snap, 4, &cfg));
    }

    #[test]
    fn approx_stats_count_the_measured_traffic() {
        use crate::ann::AnnParams;
        let params = AnnParams {
            k_clusters: 10,
            ..AnnParams::default()
        };
        let snap = random_snapshot(1000, 6, 14).with_ann(params).with_int8();
        let users = random_users(5, 6, 15);
        let (rows, stats) = top_k_batch_stats(&snap, &users, 4, &approx_cfg(3, QuantMode::Int8));
        assert_eq!(rows.len(), 5);
        assert_eq!(stats.probed_clusters, 5 * 3);
        assert!(stats.candidates < 1000 * 5, "probe must prune the scan");
        assert!(stats.rescored > 0 && stats.rescored <= 5 * 16);
        assert!(stats.rescored <= stats.candidates);
        // bytes = probe (all centroids, FP32) + int8 member scan + FP32 rescore.
        let want = 5 * 10 * 6 * 4 + stats.candidates * 6 + stats.rescored * 6 * 4;
        assert_eq!(stats.bytes, want);
        // The whole point: far fewer bytes than the exact FP32 scan.
        let exact = scan_bytes(&snap, 5, &ScoreConfig::default());
        assert!(
            stats.bytes < exact,
            "approx {} vs exact {exact}",
            stats.bytes
        );
    }

    #[test]
    fn int8_rescore_keeps_recall_high_on_a_random_snapshot() {
        use crate::ann::AnnParams;
        use crate::metrics::overlap_at_k;
        let params = AnnParams {
            k_clusters: 16,
            ..AnnParams::default()
        };
        let snap = random_snapshot(500, 12, 16).with_ann(params).with_int8();
        let users = random_users(20, 12, 17);
        let exact = top_k_batch(&snap, &users, 10, &ScoreConfig::default());
        let approx = top_k_batch(&snap, &users, 10, &approx_cfg(8, QuantMode::Int8));
        let mut recall = 0.0;
        for (a, b) in exact.iter().zip(approx.iter()) {
            recall += overlap_at_k(a, b, 10);
        }
        recall /= 20.0;
        assert!(
            recall >= 0.9,
            "recall@10 {recall} below the documented floor"
        );
    }
}
