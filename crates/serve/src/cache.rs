//! LRU result cache keyed by `(user, model epoch)`.
//!
//! Recommendation traffic is heavily skewed (the dataset generators plant
//! Zipf item popularity and log-normal user activity precisely because real
//! traces look that way), so a small cache in front of the scorer absorbs a
//! large share of requests. Keying by epoch makes invalidation free: a
//! published snapshot changes the key of every lookup, so stale entries
//! simply stop being hit and age out of the LRU list.
//!
//! Entries are returned by reference to the stored vector, so a hit is
//! bit-identical to the scoring pass that populated it (test-enforced).

use crate::topk::ScoredItem;
use std::collections::HashMap;

/// Cache key: a known user under one published model epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// User row.
    pub user: u32,
    /// Model epoch the cached ranking was computed under.
    pub epoch: u64,
}

/// Hit/miss/occupancy counters, cheap to copy out for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
}

impl CacheStats {
    /// Hits over all lookups (0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

/// One slot of the intrusive LRU list.
#[derive(Debug)]
struct Slot {
    key: CacheKey,
    value: Vec<ScoredItem>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from [`CacheKey`] to a ranked
/// item list. All operations are `O(1)` (hash map + intrusive list).
///
/// ```
/// use cumf_serve::cache::{CacheKey, ResultCache};
/// use cumf_serve::topk::ScoredItem;
///
/// let mut cache = ResultCache::new(2);
/// let k = |user| CacheKey { user, epoch: 0 };
/// let v = vec![ScoredItem { item: 9, score: 1.0 }];
/// cache.insert(k(1), v.clone());
/// cache.insert(k(2), v.clone());
/// assert!(cache.get(&k(1)).is_some()); // 1 is now most-recent
/// cache.insert(k(3), v.clone());       // evicts 2, the LRU entry
/// assert!(cache.get(&k(2)).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot index, NIL when empty.
    head: usize,
    /// Least-recently-used slot index, NIL when empty.
    tail: usize,
    /// Reusable slot indices from evictions.
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&[ScoredItem]> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(&self.slots[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching recency or counters.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Insert (or overwrite) `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: CacheKey, value: Vec<ScoredItem>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let old = self.slots[lru].key;
            self.map.remove(&old);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            capacity: self.capacity,
        }
    }

    /// Drop every entry (counters are preserved — they describe traffic,
    /// not contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32, epoch: u64) -> CacheKey {
        CacheKey { user, epoch }
    }

    fn val(item: u32) -> Vec<ScoredItem> {
        vec![ScoredItem {
            item,
            score: item as f32,
        }]
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ResultCache::new(3);
        for u in 0..3 {
            c.insert(key(u, 0), val(u));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(c.get(&key(0, 0)).is_some());
        c.insert(key(3, 0), val(3));
        assert!(c.contains(&key(0, 0)));
        assert!(!c.contains(&key(1, 0)));
        assert!(c.contains(&key(2, 0)));
        assert!(c.contains(&key(3, 0)));
        assert_eq!(c.stats().len, 3);
    }

    #[test]
    fn epoch_partitions_the_keyspace() {
        let mut c = ResultCache::new(4);
        c.insert(key(7, 0), val(1));
        assert!(c.get(&key(7, 1)).is_none(), "new epoch: logical miss");
        c.insert(key(7, 1), val(2));
        assert_eq!(c.get(&key(7, 0)).unwrap()[0].item, 1);
        assert_eq!(c.get(&key(7, 1)).unwrap()[0].item, 2);
    }

    #[test]
    fn counters_track_traffic() {
        let mut c = ResultCache::new(2);
        assert!(c.get(&key(0, 0)).is_none());
        c.insert(key(0, 0), val(0));
        assert!(c.get(&key(0, 0)).is_some());
        assert!(c.get(&key(0, 0)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overwrite_updates_value_and_recency() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 0), val(1));
        c.insert(key(1, 0), val(2));
        c.insert(key(0, 0), val(3)); // overwrite; 1 is now LRU
        c.insert(key(2, 0), val(4));
        assert!(!c.contains(&key(1, 0)));
        assert_eq!(c.get(&key(0, 0)).unwrap()[0].item, 3);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(0, 0), val(1));
        assert!(c.get(&key(0, 0)).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c = ResultCache::new(1);
        for u in 0..10 {
            c.insert(key(u, 0), val(u));
            assert_eq!(c.get(&key(u, 0)).unwrap()[0].item, u);
            if u > 0 {
                assert!(!c.contains(&key(u - 1, 0)));
            }
        }
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 0), val(0));
        let _ = c.get(&key(0, 0));
        c.clear();
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(&key(0, 0)).is_none());
    }
}
