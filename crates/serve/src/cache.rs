//! LRU result cache keyed by `(model, epoch, user, endpoint, retrieval)`,
//! and its lock-striped concurrent wrapper.
//!
//! Recommendation traffic is heavily skewed (the dataset generators plant
//! Zipf item popularity and log-normal user activity precisely because real
//! traces look that way), so a small cache in front of the scorer absorbs a
//! large share of requests. Keying by `(model, epoch)` makes invalidation
//! free: a published snapshot changes the key of every lookup, so stale
//! entries simply stop being hit and age out of the LRU list — and two
//! registry models (a canary arm and its champion, say) can never answer
//! for each other, because their registry slots differ.
//!
//! Entries are returned by reference to the stored vector, so a hit is
//! bit-identical to the scoring pass that populated it (test-enforced).
//!
//! [`ResultCache`] itself is single-threaded (`&mut self`); the engine
//! fronts it with [`StripedCache`], which hashes each user id to one of N
//! independently locked segments so concurrent request threads contend
//! only when they land on the same stripe.

use crate::query::Endpoint;
use crate::scorer::Retrieval;
use crate::topk::ScoredItem;
use cumf_telemetry::{FootprintReport, MemoryFootprint};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Cache key: a known query id under one published epoch of one
/// registered model, scored by one endpoint under one retrieval mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The model's registry slot ([`crate::registry::ModelRegistry::slot`]
    /// — unique per registered model, never reused), so arms of a canary
    /// split can never hit each other's entries.
    pub model: u32,
    /// Model epoch the cached ranking was computed under.
    pub epoch: u64,
    /// Query id: the user row for user → top-k entries, the *item* row
    /// for similar-items entries. Safe to overload only because
    /// [`CacheKey::endpoint`] keeps the two id spaces apart.
    pub user: u32,
    /// The serving endpoint that produced the ranking. An item→item
    /// answer and a user→top-k answer for the same numeric id are
    /// unrelated rankings; the endpoint tag stops them aliasing.
    pub endpoint: Endpoint,
    /// Retrieval mode the ranking was computed under. An `Exact` and an
    /// `Approx` answer for the same `(model, epoch, user)` are different
    /// rankings, so the mode is part of the key — without it a config
    /// change (or two engines sharing a cache at different dial settings)
    /// would alias them.
    pub retrieval: Retrieval,
}

/// Hit/miss/occupancy counters, cheap to copy out for telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Maximum entries.
    pub capacity: usize,
    /// Estimated bytes held by resident entries: per entry, the slot and
    /// index-map overhead plus `k × 8` bytes of ranked items. An estimate
    /// (allocator slack and `HashMap` table load are not modelled), but a
    /// faithful one — it scales with `len` and with `k`.
    pub bytes: u64,
}

impl CacheStats {
    /// Hits over all lookups (0 when nothing was looked up).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

/// One slot of the intrusive LRU list.
#[derive(Debug)]
struct Slot {
    key: CacheKey,
    value: Vec<ScoredItem>,
    prev: usize,
    next: usize,
}

/// A fixed-capacity least-recently-used map from [`CacheKey`] to a ranked
/// item list. All operations are `O(1)` (hash map + intrusive list).
///
/// ```
/// use cumf_serve::cache::{CacheKey, ResultCache};
/// use cumf_serve::query::Endpoint;
/// use cumf_serve::scorer::Retrieval;
/// use cumf_serve::topk::ScoredItem;
///
/// let mut cache = ResultCache::new(2);
/// let k = |user| CacheKey {
///     model: 0, epoch: 0, user, endpoint: Endpoint::TopK, retrieval: Retrieval::Exact,
/// };
/// let v = vec![ScoredItem { item: 9, score: 1.0 }];
/// cache.insert(k(1), v.clone());
/// cache.insert(k(2), v.clone());
/// assert!(cache.get(&k(1)).is_some()); // 1 is now most-recent
/// cache.insert(k(3), v.clone());       // evicts 2, the LRU entry
/// assert!(cache.get(&k(2)).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot index, NIL when empty.
    head: usize,
    /// Least-recently-used slot index, NIL when empty.
    tail: usize,
    /// Reusable slot indices from evictions.
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl ResultCache {
    /// An empty cache holding at most `capacity` entries (0 disables
    /// caching: every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&[ScoredItem]> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.push_front(idx);
                Some(&self.slots[idx].value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether `key` is resident, without touching recency or counters.
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.map.contains_key(key)
    }

    /// Insert (or overwrite) `key`, evicting the least-recently-used entry
    /// if the cache is full.
    pub fn insert(&mut self, key: CacheKey, value: Vec<ScoredItem>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() == self.capacity {
            let lru = self.tail;
            self.detach(lru);
            let old = self.slots[lru].key;
            self.map.remove(&old);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        // Fixed per-entry overhead: the LRU slot plus the index-map entry
        // (key + slot index). Payloads are counted exactly.
        let per_entry = (std::mem::size_of::<Slot>()
            + std::mem::size_of::<CacheKey>()
            + std::mem::size_of::<usize>()) as u64;
        let payload: u64 = self
            .map
            .values()
            .map(|&idx| (self.slots[idx].value.len() * std::mem::size_of::<ScoredItem>()) as u64)
            .sum();
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            len: self.map.len(),
            capacity: self.capacity,
            bytes: self.map.len() as u64 * per_entry + payload,
        }
    }

    /// Drop every entry (counters are preserved — they describe traffic,
    /// not contents).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

/// A lock-striped concurrent view over N [`ResultCache`] segments.
///
/// Each user id hashes (Fibonacci multiplicative hash — epoch is *not*
/// part of the stripe choice, so a republish keeps every user on the same
/// stripe and old-epoch entries age out of that stripe's LRU list) to one
/// segment guarded by its own mutex. Hit/miss semantics per lookup are
/// exactly [`ResultCache`]'s; total capacity is split evenly across
/// stripes, and [`StripedCache::stats`] sums the per-stripe counters so
/// hit/miss/occupancy numbers aggregate the way the single-lock cache
/// reported them.
///
/// ```
/// use cumf_serve::cache::{CacheKey, StripedCache};
/// use cumf_serve::query::Endpoint;
/// use cumf_serve::scorer::Retrieval;
/// use cumf_serve::topk::ScoredItem;
///
/// let cache = StripedCache::new(64, 8);
/// let key = CacheKey {
///     model: 0, epoch: 0, user: 7, endpoint: Endpoint::TopK, retrieval: Retrieval::Exact,
/// };
/// assert!(cache.get(&key).is_none());
/// cache.insert(key, vec![ScoredItem { item: 1, score: 2.0 }]);
/// assert_eq!(cache.get(&key).unwrap()[0].item, 1);
/// let s = cache.stats();
/// assert_eq!((s.hits, s.misses, s.len, s.capacity), (1, 1, 1, 64));
/// ```
#[derive(Debug)]
pub struct StripedCache {
    stripes: Vec<Mutex<ResultCache>>,
}

impl StripedCache {
    /// A cache of `capacity` total entries split over `n_stripes`
    /// independently locked segments (`n_stripes` is floored at 1; the
    /// first `capacity % n_stripes` stripes absorb the remainder, so the
    /// segment capacities always sum to `capacity`). Capacity 0 disables
    /// caching entirely, as in [`ResultCache::new`].
    pub fn new(capacity: usize, n_stripes: usize) -> StripedCache {
        let n = n_stripes.max(1);
        let (base, rem) = (capacity / n, capacity % n);
        StripedCache {
            stripes: (0..n)
                .map(|i| Mutex::new(ResultCache::new(base + usize::from(i < rem))))
                .collect(),
        }
    }

    /// Number of lock stripes.
    pub fn n_stripes(&self) -> usize {
        self.stripes.len()
    }

    /// The stripe a key's user id hashes to.
    #[inline]
    fn stripe_of(&self, key: &CacheKey) -> &Mutex<ResultCache> {
        let h = key.user.wrapping_mul(0x9E37_79B9) as usize >> 16;
        &self.stripes[h % self.stripes.len()]
    }

    /// Look up `key` in its stripe, promoting it to most-recently-used on
    /// a hit. Returns a clone of the stored ranking (the stripe lock is
    /// released before returning).
    pub fn get(&self, key: &CacheKey) -> Option<Vec<ScoredItem>> {
        self.stripe_of(key).lock().get(key).map(<[_]>::to_vec)
    }

    /// Insert (or overwrite) `key` in its stripe, evicting that stripe's
    /// least-recently-used entry if the stripe is full.
    pub fn insert(&self, key: CacheKey, value: Vec<ScoredItem>) {
        self.stripe_of(&key).lock().insert(key, value);
    }

    /// Counters and occupancy summed over all stripes.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for stripe in &self.stripes {
            let s = stripe.lock().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.len += s.len;
            total.capacity += s.capacity;
            total.bytes += s.bytes;
        }
        total
    }

    /// Per-stripe stats, in stripe order (each stripe locked briefly in
    /// turn — not an atomic snapshot across stripes).
    pub fn stripe_stats(&self) -> Vec<CacheStats> {
        self.stripes.iter().map(|s| s.lock().stats()).collect()
    }

    /// Drop every entry in every stripe (counters are preserved, as in
    /// [`ResultCache::clear`]).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().clear();
        }
    }
}

impl MemoryFootprint for StripedCache {
    /// One `stripe{i}` leaf per lock stripe, carrying that stripe's
    /// estimated entry bytes (see [`CacheStats::bytes`]).
    fn footprint(&self) -> FootprintReport {
        let stripes = self
            .stripe_stats()
            .into_iter()
            .enumerate()
            .map(|(i, s)| FootprintReport::leaf(format!("stripe{i}"), s.bytes))
            .collect();
        FootprintReport::branch("cache", stripes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(user: u32, epoch: u64) -> CacheKey {
        CacheKey {
            model: 0,
            epoch,
            user,
            endpoint: Endpoint::TopK,
            retrieval: Retrieval::Exact,
        }
    }

    fn val(item: u32) -> Vec<ScoredItem> {
        vec![ScoredItem {
            item,
            score: item as f32,
        }]
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ResultCache::new(3);
        for u in 0..3 {
            c.insert(key(u, 0), val(u));
        }
        // Touch 0 so 1 becomes LRU.
        assert!(c.get(&key(0, 0)).is_some());
        c.insert(key(3, 0), val(3));
        assert!(c.contains(&key(0, 0)));
        assert!(!c.contains(&key(1, 0)));
        assert!(c.contains(&key(2, 0)));
        assert!(c.contains(&key(3, 0)));
        assert_eq!(c.stats().len, 3);
    }

    #[test]
    fn epoch_partitions_the_keyspace() {
        let mut c = ResultCache::new(4);
        c.insert(key(7, 0), val(1));
        assert!(c.get(&key(7, 1)).is_none(), "new epoch: logical miss");
        c.insert(key(7, 1), val(2));
        assert_eq!(c.get(&key(7, 0)).unwrap()[0].item, 1);
        assert_eq!(c.get(&key(7, 1)).unwrap()[0].item, 2);
    }

    #[test]
    fn model_slot_partitions_the_keyspace() {
        // Same user, same epoch, different registry slots: fully isolated
        // — the cache-side half of canary-arm isolation.
        let mut c = ResultCache::new(4);
        let champion = CacheKey {
            model: 0,
            epoch: 3,
            user: 7,
            endpoint: Endpoint::TopK,
            retrieval: Retrieval::Exact,
        };
        let challenger = CacheKey {
            model: 1,
            epoch: 3,
            user: 7,
            endpoint: Endpoint::TopK,
            retrieval: Retrieval::Exact,
        };
        c.insert(champion, val(1));
        assert!(c.get(&challenger).is_none(), "arm must not hit other arm");
        c.insert(challenger, val(2));
        assert_eq!(c.get(&champion).unwrap()[0].item, 1);
        assert_eq!(c.get(&challenger).unwrap()[0].item, 2);
    }

    #[test]
    fn retrieval_mode_partitions_the_keyspace() {
        // Same (model, epoch, user) scored exactly and approximately are
        // different answers; the key must keep them apart.
        use crate::scorer::QuantMode;
        let mut c = ResultCache::new(4);
        let exact = key(7, 3);
        let approx = CacheKey {
            retrieval: Retrieval::Approx {
                n_probe: 8,
                quant: QuantMode::Int8,
            },
            ..exact
        };
        c.insert(exact, val(1));
        assert!(c.get(&approx).is_none(), "modes must not alias");
        c.insert(approx, val(2));
        assert_eq!(c.get(&exact).unwrap()[0].item, 1);
        assert_eq!(c.get(&approx).unwrap()[0].item, 2);
        // Different dial settings are different answers too.
        let wider = CacheKey {
            retrieval: Retrieval::Approx {
                n_probe: 16,
                quant: QuantMode::Int8,
            },
            ..exact
        };
        assert!(c.get(&wider).is_none(), "n_probe is part of the key");
    }

    #[test]
    fn endpoint_partitions_the_keyspace() {
        // Item 7's similar-items ranking and user 7's top-k ranking share
        // the numeric id but are unrelated answers; the endpoint tag must
        // keep them apart.
        let mut c = ResultCache::new(4);
        let topk = key(7, 3);
        let sim = CacheKey {
            endpoint: Endpoint::SimilarItems,
            ..topk
        };
        c.insert(topk, val(1));
        assert!(c.get(&sim).is_none(), "endpoints must not alias");
        c.insert(sim, val(2));
        assert_eq!(c.get(&topk).unwrap()[0].item, 1);
        assert_eq!(c.get(&sim).unwrap()[0].item, 2);
    }

    #[test]
    fn counters_track_traffic() {
        let mut c = ResultCache::new(2);
        assert!(c.get(&key(0, 0)).is_none());
        c.insert(key(0, 0), val(0));
        assert!(c.get(&key(0, 0)).is_some());
        assert!(c.get(&key(0, 0)).is_some());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overwrite_updates_value_and_recency() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 0), val(1));
        c.insert(key(1, 0), val(2));
        c.insert(key(0, 0), val(3)); // overwrite; 1 is now LRU
        c.insert(key(2, 0), val(4));
        assert!(!c.contains(&key(1, 0)));
        assert_eq!(c.get(&key(0, 0)).unwrap()[0].item, 3);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(key(0, 0), val(1));
        assert!(c.get(&key(0, 0)).is_none());
        assert_eq!(c.stats().len, 0);
    }

    #[test]
    fn single_slot_cache_churns_correctly() {
        let mut c = ResultCache::new(1);
        for u in 0..10 {
            c.insert(key(u, 0), val(u));
            assert_eq!(c.get(&key(u, 0)).unwrap()[0].item, u);
            if u > 0 {
                assert!(!c.contains(&key(u - 1, 0)));
            }
        }
    }

    #[test]
    fn clear_keeps_counters() {
        let mut c = ResultCache::new(2);
        c.insert(key(0, 0), val(0));
        let _ = c.get(&key(0, 0));
        c.clear();
        assert_eq!(c.stats().len, 0);
        assert_eq!(c.stats().hits, 1);
        assert!(c.get(&key(0, 0)).is_none());
    }

    #[test]
    fn striped_capacity_sums_to_total() {
        for (cap, stripes) in [(64, 8), (10, 3), (7, 16), (0, 4), (5, 1)] {
            let c = StripedCache::new(cap, stripes);
            assert_eq!(c.stats().capacity, cap, "{cap} entries / {stripes} stripes");
            assert_eq!(c.n_stripes(), stripes);
        }
        // Stripe count floors at 1.
        assert_eq!(StripedCache::new(8, 0).n_stripes(), 1);
    }

    #[test]
    fn striped_semantics_match_the_single_lock_cache() {
        let striped = StripedCache::new(256, 8);
        let mut single = ResultCache::new(256);
        for round in 0..3u32 {
            for user in 0..100u32 {
                let k = key(user, 0);
                let a = striped.get(&k);
                let b = single.get(&k).map(<[_]>::to_vec);
                assert_eq!(a.is_some(), b.is_some(), "round {round} user {user}");
                if a.is_none() {
                    striped.insert(k, val(user));
                    single.insert(k, val(user));
                } else {
                    assert_eq!(a, b);
                }
            }
        }
        // Capacity exceeds the working set, so no evictions anywhere and
        // the aggregate counters agree exactly with the single-lock run.
        let (s, t) = (striped.stats(), single.stats());
        assert_eq!((s.hits, s.misses, s.len), (t.hits, t.misses, t.len));
    }

    #[test]
    fn striped_same_user_new_epoch_stays_on_one_stripe() {
        let c = StripedCache::new(16, 4);
        c.insert(key(9, 0), val(1));
        c.insert(key(9, 1), val(2));
        // Both epochs resident; epoch 0 entry is a logical miss under
        // epoch 1's key but still retrievable under its own.
        assert_eq!(c.get(&key(9, 0)).unwrap()[0].item, 1);
        assert_eq!(c.get(&key(9, 1)).unwrap()[0].item, 2);
    }

    #[test]
    fn byte_estimate_tracks_entries_and_payload() {
        let mut c = ResultCache::new(4);
        assert_eq!(c.stats().bytes, 0);
        c.insert(key(0, 0), val(1));
        let one = c.stats().bytes;
        assert!(one > 8, "an entry costs more than its one ScoredItem");
        c.insert(
            key(1, 0),
            vec![
                ScoredItem {
                    item: 2,
                    score: 0.5
                };
                10
            ],
        );
        let two = c.stats().bytes;
        // Second entry carries 9 more items than the first: +72 payload
        // bytes on top of one more fixed per-entry overhead.
        assert_eq!(two, 2 * one + 9 * 8);
        c.clear();
        assert_eq!(c.stats().bytes, 0, "cleared entries stop counting");
    }

    #[test]
    fn striped_footprint_sums_stripe_bytes() {
        let c = StripedCache::new(16, 4);
        for u in 0..8 {
            c.insert(key(u, 0), val(u));
        }
        let r = c.footprint();
        assert!(r.verify());
        assert_eq!(r.children().len(), 4);
        assert_eq!(r.total_bytes(), c.stats().bytes);
        assert!(r.total_bytes() > 0);
    }

    #[test]
    fn striped_eviction_is_per_stripe() {
        // One stripe of capacity 1: inserting two users that collide on
        // the single stripe evicts the older entry.
        let c = StripedCache::new(1, 1);
        c.insert(key(0, 0), val(0));
        c.insert(key(1, 0), val(1));
        assert!(c.get(&key(0, 0)).is_none());
        assert_eq!(c.get(&key(1, 0)).unwrap()[0].item, 1);
    }
}
