//! A hand-rolled, zero-dependency HTTP/1.1 exposition server: the
//! serving engine's observability plane on the network.
//!
//! Everything the `obs` stack accumulates in-process becomes scrapeable
//! here — a `std::net::TcpListener` accept loop, a small fixed worker
//! pool fed through a *bounded* queue (overload answers `503` instead of
//! queueing without bound, mirroring the admission queue's shed
//! discipline), per-connection read timeouts (a slow-loris client costs
//! one worker for at most the timeout), a request-head size cap, and a
//! graceful [`ShutdownHandle`] that unblocks the accept loop.
//!
//! | Route | Payload |
//! |---|---|
//! | `GET /metrics` | Prometheus text (0.0.4), memory + SLO gauges refreshed per scrape |
//! | `GET /metrics.json` | the same registry as a JSON snapshot |
//! | `GET /healthz` | liveness: `200 ok` whenever the process responds |
//! | `GET /readyz` | readiness checks ([`crate::engine::ServeEngine::health`]), `200`/`503` + JSON |
//! | `GET /debug/flight.trace.json` | Chrome trace of the flight recorder's recent ring |
//! | `GET /debug/exemplars.trace.json` | Chrome trace of the slowest-request exemplars |
//! | `GET /debug/footprint.json` | the resident-bytes tree, refreshed on request |
//! | `GET /debug/slo` | the current [`crate::obs::SloReport`] as JSON |
//! | `GET /debug/events` | the lifecycle journal as one JSON document |
//! | `GET /debug/events.jsonl` | the journal as JSONL, one record per line |
//!
//! Freshness contract: `/metrics`, `/metrics.json`, and
//! `/debug/footprint.json` call
//! [`crate::engine::ServeEngine::refresh_memory_gauges`] before
//! rendering, so `serve_mem_bytes{…}`, `serve_cache_entries`, and
//! `serve_cache_bytes` are exact as of each scrape — no mutation-driven
//! staleness. The SLO gauges are likewise recomputed per scrape (which is
//! also what drives `SloBurnEntered`/`SloBurnExited` journal transitions
//! between request bursts).
//!
//! The protocol surface is deliberately tiny — `GET`-only, one request
//! per connection, `Connection: close` — because its clients are a
//! scraper and an operator's `curl`, not browsers. Malformed or oversized
//! request heads get `400`, unknown paths `404`, non-GET methods `405`,
//! and a read timeout `408` (best-effort) before the connection closes.

use crate::engine::ServeEngine;
use crate::obs::flight::chrome_trace_for;
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

/// Configuration for the exposition server.
#[derive(Clone, Copy, Debug)]
pub struct HttpConfig {
    /// Worker threads handling accepted connections.
    pub workers: usize,
    /// Accepted connections that may wait for a worker; further
    /// connections are answered `503` immediately (bounded, like the
    /// admission queue — overload must shed, not queue without bound).
    pub max_pending: usize,
    /// Per-connection read timeout: how long a worker waits for the
    /// request head before answering `408` and closing.
    pub read_timeout: Duration,
    /// Maximum request-head bytes (request line + headers) before the
    /// connection is answered `400` and closed.
    pub max_request_bytes: usize,
}

impl Default for HttpConfig {
    fn default() -> HttpConfig {
        HttpConfig {
            workers: 2,
            max_pending: 16,
            read_timeout: Duration::from_secs(2),
            max_request_bytes: 8 * 1024,
        }
    }
}

/// A clonable handle that stops the server from any thread: sets the
/// stop flag and pokes the listener so the blocking `accept` returns.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Signal the server to stop. Idempotent; returns immediately (join
    /// happens in [`ObsServer::shutdown`] or on drop).
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; if the
        // listener is already gone there is nothing to unblock.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The running exposition server: an accept thread plus a worker pool,
/// bound to one address, serving one engine. Stops (and joins its
/// threads) on [`ObsServer::shutdown`] or drop.
#[derive(Debug)]
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9184"`, port 0 for ephemeral) and
    /// start serving `engine`'s observability plane.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: Arc<ServeEngine>,
        cfg: HttpConfig,
    ) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(cfg.max_pending.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || worker_loop(&rx, &engine, cfg))
            })
            .collect();
        let accept_stop = Arc::clone(&stop);
        let accept = std::thread::spawn(move || accept_loop(&listener, &tx, &accept_stop));
        Ok(ObsServer {
            addr,
            stop,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle that can stop the server from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            stop: Arc::clone(&self.stop),
            addr: self.addr,
        }
    }

    /// Stop accepting, drain the workers, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.handle().shutdown();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Accept connections until the stop flag is raised, handing each to the
/// bounded worker queue; a full queue answers `503` inline. Dropping the
/// sender on exit is what terminates the workers.
fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            // The unblocking poke (or a straggler racing shutdown).
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) | Err(TrySendError::Disconnected(mut stream)) => {
                let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                let _ = write_response(
                    &mut stream,
                    503,
                    "text/plain; charset=utf-8",
                    "busy: connection queue full\n",
                );
            }
        }
    }
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, engine: &ServeEngine, cfg: HttpConfig) {
    loop {
        // Hold the receiver lock only for the dequeue, not the handling.
        let next = { rx.lock().recv() };
        match next {
            Ok(stream) => handle_connection(stream, engine, &cfg),
            Err(_) => return, // accept loop gone: server is shutting down
        }
    }
}

/// How reading a request head can fail.
enum HeadError {
    /// Socket error or read timeout before the head completed.
    TimedOut,
    /// The head exceeded `max_request_bytes` or the peer closed mid-head.
    Malformed,
}

/// Read bytes until the end of the request head (`\r\n\r\n`), the size
/// cap, or the read timeout.
fn read_head(stream: &mut TcpStream, max: usize) -> Result<String, HeadError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HeadError::Malformed),
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > max {
                    return Err(HeadError::Malformed);
                }
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    return Ok(String::from_utf8_lossy(&buf).into_owned());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(HeadError::TimedOut)
            }
            Err(_) => return Err(HeadError::Malformed),
        }
    }
}

fn handle_connection(mut stream: TcpStream, engine: &ServeEngine, cfg: &HttpConfig) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let head = match read_head(&mut stream, cfg.max_request_bytes) {
        Ok(head) => head,
        Err(HeadError::TimedOut) => {
            let _ = write_response(
                &mut stream,
                408,
                "text/plain; charset=utf-8",
                "request timeout\n",
            );
            return;
        }
        Err(HeadError::Malformed) => {
            let _ = write_response(
                &mut stream,
                400,
                "text/plain; charset=utf-8",
                "bad request\n",
            );
            // An oversized head leaves unread bytes; closing with them
            // still queued sends an RST that can destroy the in-flight
            // 400. Briefly drain (bounded in time and bytes) so the
            // client reliably sees the response before the FIN.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let mut sink = [0u8; 4096];
            for _ in 0..256 {
                match stream.read(&mut sink) {
                    Ok(n) if n > 0 => {}
                    _ => break,
                }
            }
            return;
        }
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if v.starts_with("HTTP/1.") => (m, t, v),
        _ => {
            let _ = write_response(
                &mut stream,
                400,
                "text/plain; charset=utf-8",
                "malformed request line\n",
            );
            return;
        }
    };
    let _ = version;
    if method != "GET" {
        let _ = write_response(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
        return;
    }
    let path = target.split('?').next().unwrap_or(target);
    let (status, content_type, body) = respond(engine, path);
    let _ = write_response(&mut stream, status, content_type, &body);
}

/// Route one GET and produce `(status, content-type, body)`. Pure with
/// respect to the connection — exercised directly by unit tests.
fn respond(engine: &ServeEngine, path: &str) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    let obs = engine.obs();
    obs.metrics()
        .registry()
        .counter_with(
            "serve_http_requests_total",
            "Exposition-plane HTTP requests, by route",
            &[("route", if known_route(path) { path } else { "other" })],
        )
        .inc();
    match path {
        "/metrics" => {
            // Freshness contract: memory gauges are exact per scrape.
            engine.refresh_memory_gauges();
            (
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                obs.render_prometheus(engine.now()),
            )
        }
        "/metrics.json" => {
            engine.refresh_memory_gauges();
            (200, JSON, obs.snapshot(engine.now()).to_json())
        }
        "/healthz" => (200, "text/plain; charset=utf-8", "ok\n".to_string()),
        "/readyz" => {
            let status = engine.health();
            let code = if status.ready() { 200 } else { 503 };
            (code, JSON, status.to_value().to_json())
        }
        "/debug/flight.trace.json" => (200, JSON, chrome_trace_for(&obs.flight().recent())),
        "/debug/exemplars.trace.json" => (200, JSON, obs.flight().exemplar_trace()),
        "/debug/footprint.json" => (
            200,
            JSON,
            engine.refresh_memory_gauges().to_value().to_json(),
        ),
        "/debug/slo" => (
            200,
            JSON,
            serde::Serialize::to_value(&obs.refresh_slo_gauges(engine.now())).to_json(),
        ),
        "/debug/events" => (200, JSON, obs.journal().to_value().to_json()),
        "/debug/events.jsonl" => (200, "application/x-ndjson", obs.journal().to_jsonl()),
        _ => (
            404,
            "text/plain; charset=utf-8",
            format!("no such route {path}\n"),
        ),
    }
}

/// Whether `path` is a served route (bounds the `route` label set —
/// unknown paths all share `route="other"`).
fn known_route(path: &str) -> bool {
    matches!(
        path,
        "/metrics"
            | "/metrics.json"
            | "/healthz"
            | "/readyz"
            | "/debug/flight.trace.json"
            | "/debug/exemplars.trace.json"
            | "/debug/footprint.json"
            | "/debug/slo"
            | "/debug/events"
            | "/debug/events.jsonl"
    )
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_text(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Parse a `Value` out of a route's JSON body (test helper used by the
/// integration suite too, so it lives here rather than in test code).
#[doc(hidden)]
pub fn parse_json(body: &str) -> Value {
    Value::parse(body).expect("route body must be valid JSON")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Request, ServeConfig, ServeEngine};
    use crate::store::ModelSnapshot;
    use cumf_numeric::dense::DenseMatrix;
    use cumf_telemetry::NOOP;

    fn engine() -> Arc<ServeEngine> {
        let x = DenseMatrix::identity(4);
        let theta = DenseMatrix::identity(4);
        Arc::new(
            ServeEngine::builder()
                .config(ServeConfig::default().with_k(2))
                .model("default", x, ModelSnapshot::new(0, theta, vec![]))
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn routes_render_without_a_socket() {
        let engine = engine();
        engine.recommend_batch(&[Request::known(0, 0)], &NOOP);
        let (code, ct, body) = respond(&engine, "/metrics");
        assert_eq!(code, 200);
        assert!(ct.starts_with("text/plain"));
        assert!(body.contains("serve_requests_total 1"));
        assert!(body.contains("# TYPE serve_requests_total counter"));
        // Freshness: the scrape refreshed the memory gauges.
        assert!(body.contains("serve_mem_bytes{component=\"engine\",model=\"\"}"));

        let (code, _, body) = respond(&engine, "/metrics.json");
        assert_eq!(code, 200);
        assert!(parse_json(&body).get("serve_requests_total").is_some());

        let (code, _, body) = respond(&engine, "/healthz");
        assert_eq!((code, body.as_str()), (200, "ok\n"));

        let (code, _, body) = respond(&engine, "/readyz");
        assert_eq!(code, 200);
        assert_eq!(parse_json(&body).get("ready"), Some(&Value::Bool(true)));

        let (code, _, body) = respond(&engine, "/debug/footprint.json");
        assert_eq!(code, 200);
        let tree = parse_json(&body);
        assert_eq!(tree.get("name").unwrap().as_str(), Some("engine"));

        let (code, _, body) = respond(&engine, "/debug/slo");
        assert_eq!(code, 200);
        assert!(parse_json(&body).get("burn_rates").is_some());

        let (code, _, body) = respond(&engine, "/debug/events");
        assert_eq!(code, 200);
        let journal = parse_json(&body);
        let events = journal.get("events").unwrap().as_array().unwrap();
        assert!(
            events
                .iter()
                .any(|e| e.get("kind").unwrap().as_str() == Some("ModelRegistered")),
            "bootstrap registration must be journaled"
        );

        let (code, _, _) = respond(&engine, "/debug/flight.trace.json");
        assert_eq!(code, 200);

        let (code, _, _) = respond(&engine, "/nope");
        assert_eq!(code, 404);

        // Route accounting is bounded: unknown paths share one label.
        let text = engine.obs().render_prometheus(engine.now());
        assert!(text.contains("serve_http_requests_total{route=\"/metrics\"} 1"));
        assert!(text.contains("serve_http_requests_total{route=\"other\"} 1"));
    }

    #[test]
    fn shutdown_handle_unblocks_the_accept_loop() {
        let server = ObsServer::bind("127.0.0.1:0", engine(), HttpConfig::default()).unwrap();
        let handle = server.handle();
        let t = std::thread::spawn(move || server.shutdown());
        handle.shutdown();
        t.join().expect("shutdown must complete, not hang");
    }
}
