//! Request spans: one record per served request, decomposing its
//! end-to-end latency into admission and engine stages.
//!
//! The engine stamps a [`BatchTrace`] — six contiguous timestamps on the
//! engine clock bracketing the batch's cache pass, cold-start fold-in,
//! shard scatter, gather/merge, and response assembly. A [`RequestSpan`]
//! is that trace re-based onto one request: its `queue` stage runs from
//! the request's own submission time to the batch's start, and the batch
//! stages follow. Because every boundary is shared, the stage durations
//! *telescope*: they sum exactly (up to floating-point rounding) to the
//! request's end-to-end latency — test-enforced here and again through
//! the full admission path.

use crate::registry::ModelId;
use crate::shard::ShardTiming;
use cumf_telemetry::{Event, PhaseSpan};
use serde::Serialize;

/// The named stages every request decomposes into, in pipeline order.
pub const STAGES: [&str; 6] = ["queue", "cache", "foldin", "score", "merge", "respond"];

/// Timestamps and counts for one engine micro-batch, on the engine clock
/// ([`crate::engine::ServeEngine::now`]). Produced by
/// [`crate::engine::ServeEngine::recommend_batch_traced`].
#[derive(Clone, Debug)]
pub struct BatchTrace {
    /// Batch processing began (first timestamp taken inside the engine).
    pub start: f64,
    /// Cache pass finished.
    pub cache_done: f64,
    /// Cold-start fold-in and batch assembly finished.
    pub foldin_done: f64,
    /// Shard scatter (per-shard blocked scoring) finished.
    pub score_done: f64,
    /// Gather/merge of per-shard heaps finished.
    pub merge_done: f64,
    /// Responses assembled and cache filled; the batch is done.
    pub end: f64,
    /// Requests in the batch.
    pub requests: usize,
    /// Requests answered from the result cache.
    pub cache_hits: usize,
    /// Cold users folded in.
    pub cold_users: usize,
    /// Users that went through the scoring pass (misses + cold).
    pub scored_users: usize,
    /// Requests answered with a [`crate::ServeError`] instead of a
    /// recommendation (routing failures, unknown users).
    pub errors: usize,
    /// The model arms the batch served, as `(model, epoch)` pairs in
    /// registry-slot order (single-model batches have exactly one).
    pub arms: Vec<(ModelId, u64)>,
    /// Per-shard scoring accounting for the scatter pass.
    pub shard_timings: Vec<ShardTiming>,
    /// Factor bytes the batch's scoring passes streamed, summed over all
    /// arms and shards ([`ShardTiming::bytes`]). Cache hits contribute
    /// nothing — a hit bypasses the scan entirely.
    pub scan_bytes: u64,
    /// Nominal floating-point operations of the batch's scoring passes
    /// (`2·f` per scored row), summed over all arms and shards
    /// ([`ShardTiming::flops`]). The compute-side twin of
    /// [`BatchTrace::scan_bytes`]: together with the score-stage seconds
    /// it yields effective GFLOP/s.
    pub score_flops: u64,
    /// Clusters probed by approximate-retrieval passes, summed over all
    /// arms, shards, and users (0 on exact engines). Feeds
    /// `serve_ann_probed_clusters_total`.
    pub ann_probed: u64,
    /// Stage-2 shortlist rows scored by approximate-retrieval passes
    /// (0 on exact engines). Feeds `serve_ann_shortlist_items_total`.
    pub ann_candidates: u64,
    /// Shortlist rows rescored exactly in FP32 (nonzero only under int8
    /// quantization). Feeds `serve_ann_rescored_items_total`; the rescore
    /// fraction is `ann_rescored / ann_candidates`.
    pub ann_rescored: u64,
}

impl BatchTrace {
    /// Wall-clock seconds the engine spent on the batch.
    pub fn service_secs(&self) -> f64 {
        self.end - self.start
    }
}

/// Per-stage durations (seconds) of one request, in [`STAGES`] order.
///
/// Built from shared batch boundaries, so
/// [`total`](StageBreakdown::total) telescopes to the request's
/// end-to-end latency exactly (up to floating-point rounding).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct StageBreakdown {
    /// Submit → batch start (admission queueing, including batch close).
    pub queue: f64,
    /// Result-cache lookup pass.
    pub cache: f64,
    /// Cold-start fold-in and batch factor assembly.
    pub foldin: f64,
    /// Scatter: per-shard blocked scoring.
    pub score: f64,
    /// Gather: merging per-shard heaps into global rankings.
    pub merge: f64,
    /// Cache fill and response assembly.
    pub respond: f64,
}

impl StageBreakdown {
    /// Stage durations paired with their [`STAGES`] names.
    pub fn as_pairs(&self) -> [(&'static str, f64); 6] {
        [
            ("queue", self.queue),
            ("cache", self.cache),
            ("foldin", self.foldin),
            ("score", self.score),
            ("merge", self.merge),
            ("respond", self.respond),
        ]
    }

    /// Sum of all stages — the request's end-to-end latency.
    pub fn total(&self) -> f64 {
        self.queue + self.cache + self.foldin + self.score + self.merge + self.respond
    }

    /// The (stage name, duration) of the slowest stage.
    pub fn slowest(&self) -> (&'static str, f64) {
        self.as_pairs()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("six stages")
    }
}

/// One served request's full timing record: identity, batch context, and
/// the stage decomposition of its latency.
#[derive(Clone, Debug, Serialize)]
pub struct RequestSpan {
    /// The request's caller-chosen id.
    pub request_id: u64,
    /// When the producer submitted the request (engine clock).
    pub submitted_at: f64,
    /// When its batch finished (engine clock).
    pub finished_at: f64,
    /// How many requests shared the batch.
    pub batch_size: usize,
    /// Whether the response came from the result cache.
    pub from_cache: bool,
    /// Whether this was a cold-start (fold-in) request.
    pub cold: bool,
    /// Factor bytes the request's *batch* streamed while scoring
    /// ([`BatchTrace::scan_bytes`]) — like the stage durations, a batch
    /// quantity attributed to each rider, not a per-request exclusive
    /// count. 0 for a batch answered entirely from cache.
    pub scan_bytes: u64,
    /// Per-stage latency decomposition.
    pub stages: StageBreakdown,
}

impl RequestSpan {
    /// Re-base a batch trace onto one of its requests.
    ///
    /// `submitted_at` must not exceed `trace.start` (requests are always
    /// submitted before the worker opens their batch); the batch stages
    /// are shared with every other request in the batch.
    pub fn from_batch(
        trace: &BatchTrace,
        request_id: u64,
        submitted_at: f64,
        from_cache: bool,
        cold: bool,
    ) -> RequestSpan {
        RequestSpan {
            request_id,
            submitted_at,
            finished_at: trace.end,
            batch_size: trace.requests,
            from_cache,
            cold,
            scan_bytes: trace.scan_bytes,
            stages: StageBreakdown {
                queue: trace.start - submitted_at,
                cache: trace.cache_done - trace.start,
                foldin: trace.foldin_done - trace.cache_done,
                score: trace.score_done - trace.foldin_done,
                merge: trace.merge_done - trace.score_done,
                respond: trace.end - trace.merge_done,
            },
        }
    }

    /// End-to-end latency in seconds (submit → batch end).
    pub fn e2e(&self) -> f64 {
        self.finished_at - self.submitted_at
    }

    /// Render the span as Chrome trace-event phases: one outer
    /// `request <id>` span plus one nested span per non-empty stage, laid
    /// out contiguously from `submitted_at` on the engine clock. Feed the
    /// result to [`cumf_telemetry::chrome_trace`].
    pub fn to_chrome_events(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(1 + STAGES.len());
        events.push(Event::Phase {
            span: PhaseSpan::new(
                format!("request {}", self.request_id),
                self.submitted_at,
                self.finished_at,
            ),
        });
        let mut t = self.submitted_at;
        for (name, dur) in self.stages.as_pairs() {
            // Clamp into the outer span so floating-point rounding can
            // never make a child poke past its parent in the trace sweep.
            let end = (t + dur.max(0.0)).min(self.finished_at);
            if dur > 0.0 {
                events.push(Event::Phase {
                    span: PhaseSpan::new(format!("stage.{name}"), t, end),
                });
            }
            t = end;
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> BatchTrace {
        BatchTrace {
            start: 1.0,
            cache_done: 1.125,
            foldin_done: 1.25,
            score_done: 1.5,
            merge_done: 1.625,
            end: 1.75,
            requests: 4,
            cache_hits: 1,
            cold_users: 1,
            scored_users: 3,
            errors: 0,
            arms: vec![(ModelId::from("default"), 7)],
            shard_timings: vec![],
            scan_bytes: 4096,
            score_flops: 0,
            ann_probed: 0,
            ann_candidates: 0,
            ann_rescored: 0,
        }
    }

    #[test]
    fn stages_telescope_to_e2e_latency() {
        let span = RequestSpan::from_batch(&trace(), 42, 0.875, false, false);
        assert_eq!(span.e2e(), 1.75 - 0.875);
        assert!(
            (span.stages.total() - span.e2e()).abs() < 1e-12,
            "stage sum {} != e2e {}",
            span.stages.total(),
            span.e2e()
        );
        assert_eq!(span.stages.queue, 0.125);
        assert_eq!(span.stages.slowest().0, "score");
        assert_eq!(span.scan_bytes, 4096, "batch scan bytes ride the span");
    }

    #[test]
    fn chrome_events_nest_inside_the_request_span() {
        let span = RequestSpan::from_batch(&trace(), 9, 0.75, false, true);
        let events = span.to_chrome_events();
        // 1 outer + 6 non-empty stages.
        assert_eq!(events.len(), 7);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for e in &events[1..] {
            if let Event::Phase { span: s } = e {
                assert!(s.start >= span.submitted_at && s.end <= span.finished_at);
                lo = lo.min(s.start);
                hi = hi.max(s.end);
            }
        }
        // Stages tile the whole request interval.
        assert_eq!((lo, hi), (span.submitted_at, span.finished_at));
        let json = cumf_telemetry::chrome_trace(&events);
        assert!(json.contains("request 9") && json.contains("stage.score"));
    }

    #[test]
    fn zero_duration_stages_are_skipped_in_the_trace() {
        let mut t = trace();
        t.cache_done = t.start; // empty cache stage
        let span = RequestSpan::from_batch(&t, 1, t.start, true, false);
        let names: Vec<String> = span
            .to_chrome_events()
            .iter()
            .filter_map(|e| match e {
                Event::Phase { span } => Some(span.name.to_string()),
                _ => None,
            })
            .collect();
        assert!(!names.contains(&"stage.cache".to_string()));
        assert!(!names.contains(&"stage.queue".to_string()));
        assert!(names.contains(&"stage.score".to_string()));
    }
}
