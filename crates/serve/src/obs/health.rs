//! The typed health model: liveness vs readiness.
//!
//! The two questions a supervisor asks a serving process are different
//! and must not share an answer:
//!
//! * **Liveness** — "is the process responsive?" Answered by the
//!   `/healthz` endpoint merely replying: if the exposition server can
//!   write `ok`, the process is alive. Restarting a live-but-unready
//!   process fixes nothing, so liveness carries no checks.
//! * **Readiness** — "should this process receive traffic?" A
//!   composition of named [`HealthCheck`]s evaluated against live engine
//!   state ([`crate::engine::ServeEngine::health`]):
//!   `default_model_live` (the registry's default alias resolves to a
//!   live, serving model), `slo_fast_burn` (the short-window burn rate is
//!   below the fast-burn threshold — a process torching its error budget
//!   should be drained, not fed), and `memory_budget` (resident bytes are
//!   within the configured soft budget, vacuously true when no budget is
//!   set). `/readyz` returns 200 when every check passes and 503
//!   otherwise, with the full check list as a JSON body either way.

use serde::Value;

/// One named readiness check with its verdict and a human-readable
/// detail string (the "why", rendered into the `/readyz` body).
#[derive(Clone, Debug)]
pub struct HealthCheck {
    /// Stable check name (`default_model_live`, `slo_fast_burn`,
    /// `memory_budget`).
    pub name: &'static str,
    /// Whether the check passed.
    pub ok: bool,
    /// Human-readable explanation of the current state.
    pub detail: String,
}

/// The readiness verdict: every check, plus the conjunction.
#[derive(Clone, Debug)]
pub struct HealthStatus {
    /// The checks evaluated, in stable order.
    pub checks: Vec<HealthCheck>,
}

impl HealthStatus {
    /// Whether every check passed — the 200-vs-503 bit of `/readyz`.
    pub fn ready(&self) -> bool {
        self.checks.iter().all(|c| c.ok)
    }

    /// The names of the failing checks (empty when ready).
    pub fn failing(&self) -> Vec<&'static str> {
        self.checks
            .iter()
            .filter(|c| !c.ok)
            .map(|c| c.name)
            .collect()
    }

    /// The status as JSON:
    /// `{"ready": bool, "checks": [{name, ok, detail}, …]}`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("ready".into(), Value::Bool(self.ready())),
            (
                "checks".into(),
                Value::Array(
                    self.checks
                        .iter()
                        .map(|c| {
                            Value::Object(vec![
                                ("name".into(), Value::Str(c.name.into())),
                                ("ok".into(), Value::Bool(c.ok)),
                                ("detail".into(), Value::Str(c.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(name: &'static str, ok: bool) -> HealthCheck {
        HealthCheck {
            name,
            ok,
            detail: format!("{name} is {ok}"),
        }
    }

    #[test]
    fn readiness_is_the_conjunction_of_checks() {
        let all_ok = HealthStatus {
            checks: vec![check("a", true), check("b", true)],
        };
        assert!(all_ok.ready());
        assert!(all_ok.failing().is_empty());
        let one_bad = HealthStatus {
            checks: vec![check("a", true), check("b", false)],
        };
        assert!(!one_bad.ready());
        assert_eq!(one_bad.failing(), vec!["b"]);
        // No checks: vacuously ready (liveness-shaped).
        assert!(HealthStatus { checks: vec![] }.ready());
    }

    #[test]
    fn json_body_carries_every_check() {
        let status = HealthStatus {
            checks: vec![
                check("default_model_live", true),
                check("slo_fast_burn", false),
            ],
        };
        let v = status.to_value();
        assert_eq!(v.get("ready"), Some(&Value::Bool(false)));
        let checks = v.get("checks").unwrap().as_array().unwrap();
        assert_eq!(checks.len(), 2);
        assert_eq!(
            checks[1].get("name").unwrap().as_str(),
            Some("slo_fast_burn")
        );
        assert!(v.to_json().contains("\"ready\":false"));
    }
}
