//! SLO tracking: a latency target, an error/shed budget, and multi-window
//! burn rates.
//!
//! An SLO here is "at least `1 - error_budget` of requests finish within
//! `target`". A request is *bad* if it finishes over the target **or** is
//! shed at admission (a shed user got no answer at all — it spends budget
//! exactly like a slow one). The tracker keeps:
//!
//! * **lifetime totals** — good / breached / shed counts and overall
//!   compliance, reported in [`crate::admission::AdmissionReport`], and
//! * **windowed burn rates** — for each configured window, the fraction
//!   of bad requests inside it divided by the error budget. Burn 1.0
//!   means budget is being spent exactly at the sustainable rate; burn 10
//!   over a short window is the classic fast-burn page. Two windows
//!   (short + long) distinguish a transient spike from a sustained
//!   regression, per the standard multi-window alerting recipe.
//!
//! Time is the engine clock (`ServeEngine::now`), bucketed into a coarse
//! wheel so recording stays O(1) and memory is bounded by the long
//! window.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;
use std::time::Duration;

/// The service-level objective being tracked.
#[derive(Clone, Copy, Debug)]
pub struct SloConfig {
    /// End-to-end latency target per request.
    pub target: Duration,
    /// Fraction of requests allowed to be bad (breach or shed).
    pub error_budget: f64,
    /// Burn-rate windows, short first (e.g. 1 s and 10 s for a bench run;
    /// minutes to hours in a long-lived deployment).
    pub windows: [Duration; 2],
    /// Short-window burn rate at or above which the SLO is *fast-burning*:
    /// the error budget is being spent this many times faster than
    /// sustainable. 10 is the classic fast-burn page threshold. Firing
    /// fails the `slo_fast_burn` readiness check and journals
    /// `SloBurnEntered`/`SloBurnExited` transitions.
    pub fast_burn_threshold: f64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            target: Duration::from_millis(25),
            error_budget: 0.01,
            windows: [Duration::from_secs(1), Duration::from_secs(10)],
            fast_burn_threshold: 10.0,
        }
    }
}

/// One wheel slot covering `[start, start + resolution)` on the engine
/// clock.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    start: f64,
    good: u64,
    bad: u64,
}

#[derive(Debug)]
struct Inner {
    buckets: VecDeque<Bucket>,
    good: u64,
    breached: u64,
    shed: u64,
}

/// Tracks one [`SloConfig`] over a stream of completions and sheds.
/// All methods take `&self`.
#[derive(Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    /// Wheel slot width in seconds: short window / 8, floored at 1 ms.
    resolution: f64,
    inner: Mutex<Inner>,
}

impl SloTracker {
    /// A tracker for `cfg` starting with an empty history.
    pub fn new(cfg: SloConfig) -> SloTracker {
        let resolution = (cfg.windows[0].as_secs_f64() / 8.0).max(1e-3);
        SloTracker {
            cfg,
            resolution,
            inner: Mutex::new(Inner {
                buckets: VecDeque::new(),
                good: 0,
                breached: 0,
                shed: 0,
            }),
        }
    }

    /// The objective being tracked.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Record one completion at engine time `now`; returns whether it
    /// breached the latency target.
    pub fn record(&self, now: f64, latency_secs: f64) -> bool {
        let breached = latency_secs > self.cfg.target.as_secs_f64();
        let mut inner = self.inner.lock();
        if breached {
            inner.breached += 1;
        } else {
            inner.good += 1;
        }
        self.bucket_at(&mut inner, now, breached);
        breached
    }

    /// Record one shed (rejected at admission) at engine time `now`.
    pub fn record_shed(&self, now: f64) {
        let mut inner = self.inner.lock();
        inner.shed += 1;
        self.bucket_at(&mut inner, now, true);
    }

    fn bucket_at(&self, inner: &mut Inner, now: f64, bad: bool) {
        let start = (now / self.resolution).floor() * self.resolution;
        // Stamps are monotone per thread but threads interleave; walk
        // back over the (few) newest slots to find the right one.
        let slot = inner
            .buckets
            .iter_mut()
            .rev()
            .take(4)
            .find(|b| b.start <= start && start < b.start + self.resolution);
        let slot = match slot {
            Some(b) => b,
            None => {
                inner.buckets.push_back(Bucket {
                    start,
                    good: 0,
                    bad: 0,
                });
                // Bound memory to the long window (+ slack for stragglers).
                let horizon = self.cfg.windows[1].as_secs_f64() + 4.0 * self.resolution;
                while let Some(front) = inner.buckets.front() {
                    if front.start + self.resolution < now - horizon {
                        inner.buckets.pop_front();
                    } else {
                        break;
                    }
                }
                inner.buckets.back_mut().expect("just pushed")
            }
        };
        if bad {
            slot.bad += 1;
        } else {
            slot.good += 1;
        }
    }

    /// Burn rate over the trailing `window` ending at `now`: the bad
    /// fraction inside the window divided by the error budget. 0.0 when
    /// the window is empty.
    pub fn burn_rate(&self, now: f64, window: Duration) -> f64 {
        let inner = self.inner.lock();
        let from = now - window.as_secs_f64();
        let (mut good, mut bad) = (0u64, 0u64);
        for b in inner.buckets.iter().rev() {
            if b.start + self.resolution <= from {
                break;
            }
            good += b.good;
            bad += b.bad;
        }
        let total = good + bad;
        if total == 0 || self.cfg.error_budget <= 0.0 {
            0.0
        } else {
            (bad as f64 / total as f64) / self.cfg.error_budget
        }
    }

    /// Whether the SLO is fast-burning at engine time `now`: the
    /// short-window burn rate has reached
    /// [`SloConfig::fast_burn_threshold`]. This is the readiness-check
    /// predicate — a process torching its error budget should be drained,
    /// not fed more traffic.
    pub fn fast_burn(&self, now: f64) -> bool {
        self.burn_rate(now, self.cfg.windows[0]) >= self.cfg.fast_burn_threshold
    }

    /// Summarize the tracker at engine time `now`.
    pub fn report(&self, now: f64) -> SloReport {
        let (good, breached, shed) = {
            let inner = self.inner.lock();
            (inner.good, inner.breached, inner.shed)
        };
        let total = good + breached + shed;
        SloReport {
            target_secs: self.cfg.target.as_secs_f64(),
            error_budget: self.cfg.error_budget,
            total,
            breached,
            shed,
            compliance: if total == 0 {
                1.0
            } else {
                good as f64 / total as f64
            },
            burn_rates: self
                .cfg
                .windows
                .iter()
                .map(|&w| WindowBurn {
                    window_secs: w.as_secs_f64(),
                    burn: self.burn_rate(now, w),
                })
                .collect(),
        }
    }
}

/// Burn rate over one trailing window.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct WindowBurn {
    /// Window length in seconds.
    pub window_secs: f64,
    /// Bad fraction in the window divided by the error budget.
    pub burn: f64,
}

/// Point-in-time SLO summary, carried in
/// [`crate::admission::AdmissionReport`] and the bench JSON.
#[derive(Clone, Debug, Serialize)]
pub struct SloReport {
    /// Latency target in seconds.
    pub target_secs: f64,
    /// Allowed bad fraction.
    pub error_budget: f64,
    /// Requests accounted (completions + sheds).
    pub total: u64,
    /// Completions over the latency target.
    pub breached: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Lifetime good fraction (1.0 when nothing was recorded).
    pub compliance: f64,
    /// Burn rate per configured window.
    pub burn_rates: Vec<WindowBurn>,
}

impl SloReport {
    /// Whether lifetime compliance still meets the objective.
    pub fn met(&self) -> bool {
        self.compliance >= 1.0 - self.error_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(target_ms: u64, budget: f64) -> SloConfig {
        SloConfig {
            target: Duration::from_millis(target_ms),
            error_budget: budget,
            windows: [Duration::from_secs(1), Duration::from_secs(10)],
            ..SloConfig::default()
        }
    }

    #[test]
    fn compliance_counts_breaches_and_sheds() {
        let t = SloTracker::new(cfg(10, 0.1));
        for i in 0..8 {
            assert!(!t.record(i as f64 * 0.01, 0.001));
        }
        assert!(t.record(0.09, 0.5), "50 ms breaches a 10 ms target");
        t.record_shed(0.1);
        let r = t.report(0.1);
        assert_eq!((r.total, r.breached, r.shed), (10, 1, 1));
        assert!((r.compliance - 0.8).abs() < 1e-12);
        assert!(!r.met(), "20% bad > 10% budget");
    }

    #[test]
    fn empty_tracker_is_compliant_with_zero_burn() {
        let t = SloTracker::new(SloConfig::default());
        let r = t.report(5.0);
        assert_eq!(r.total, 0);
        assert_eq!(r.compliance, 1.0);
        assert!(r.met());
        assert!(r.burn_rates.iter().all(|w| w.burn == 0.0));
    }

    #[test]
    fn burn_rate_sees_only_its_window() {
        let t = SloTracker::new(cfg(10, 0.5));
        // Older traffic: all bad, inside the long window but well before
        // the short one.
        for i in 0..10 {
            t.record(15.0 + i as f64 * 0.05, 1.0);
        }
        // Recent traffic: all good, inside the last second.
        for i in 0..10 {
            t.record(20.0 + i as f64 * 0.05, 0.001);
        }
        let now = 20.5;
        let short = t.burn_rate(now, Duration::from_secs(1));
        let long = t.burn_rate(now, Duration::from_secs(10));
        assert_eq!(short, 0.0, "short window holds only good requests");
        assert!(
            (long - 1.0).abs() < 1e-9,
            "half bad / 0.5 budget = 1.0, got {long}"
        );
        assert!(short < long);
    }

    #[test]
    fn fast_burn_trips_at_the_threshold() {
        let t = SloTracker::new(cfg(10, 0.01)); // default threshold 10.0
        for i in 0..9 {
            t.record(0.1 + i as f64 * 0.05, 0.001);
        }
        assert!(!t.fast_burn(0.6), "all-good window must not fire");
        // One breach in ten: bad fraction 0.1 / budget 0.01 = burn 10.
        t.record(0.58, 1.0);
        assert!(t.fast_burn(0.6), "burn 10 meets the threshold");
        // The window ages out and the alarm clears.
        assert!(!t.fast_burn(5.0));
    }

    #[test]
    fn wheel_prunes_beyond_the_long_window() {
        let t = SloTracker::new(cfg(10, 0.01));
        for i in 0..1000 {
            t.record(i as f64 * 0.5, 0.001);
        }
        let buckets = t.inner.lock().buckets.len();
        // Long window 10 s at 125 ms resolution + slack: far below 1000.
        assert!(buckets < 100, "wheel must stay bounded, had {buckets}");
        // Lifetime totals still see everything.
        assert_eq!(t.report(500.0).total, 1000);
    }
}
