//! `serve::obs` — request tracing, live metrics, flight recording, and
//! SLO tracking for the serving path.
//!
//! PR 1 gave training an nvprof-style event pipeline; this module is the
//! serving-side observability layer built on top of it (see
//! `docs/OBSERVABILITY.md` for the full tour):
//!
//! * [`span`] — [`RequestSpan`]: every served request decomposed into
//!   queue / cache / foldin / score / merge / respond stages whose
//!   durations telescope exactly to its end-to-end latency.
//! * a typed [`ServeMetrics`] registry ([`cumf_telemetry::MetricsRegistry`]
//!   underneath) replacing the ad-hoc `serve.*` counter strings: Prometheus
//!   text exposition, JSON snapshots, and a bridge into the JSONL stream.
//! * [`flight`] — [`FlightRecorder`]: an always-on ring of recent spans
//!   plus a tail-latency exemplar sampler, dumpable as a Chrome trace.
//! * [`slo`] — [`SloTracker`]: latency target + error/shed budget with
//!   multi-window burn rates, surfaced in the admission report.
//!
//! PR 9 turns the bundle into an *operational surface*:
//!
//! * [`journal`] — [`EventJournal`]: typed, engine-clock-timestamped
//!   lifecycle audit records (publishes, promotions, burn transitions,
//!   shed bursts) in a bounded ring.
//! * [`health`] — [`HealthStatus`]: the liveness-vs-readiness model
//!   behind `/healthz` and `/readyz`.
//! * [`http`] — [`ObsServer`]: a zero-dependency HTTP/1.1 server
//!   exposing all of the above as scrape endpoints.
//!
//! One [`ServeObs`] bundles all of it; the engine owns it
//! ([`crate::engine::ServeEngine::obs`]) so the admission worker and any
//! exposition endpoint observe the same state. The bundle also owns the
//! **engine clock** ([`ServeObs::now`], seconds since construction) so
//! spans, SLO buckets, and journal timestamps share one time base.

pub mod flight;
pub mod health;
pub mod http;
pub mod journal;
pub mod slo;
pub mod span;

pub use flight::{chrome_trace_for, FlightRecorder};
pub use health::{HealthCheck, HealthStatus};
pub use http::{HttpConfig, ObsServer, ShutdownHandle};
pub use journal::{EventJournal, EventKind, JournalRecord};
pub use slo::{SloConfig, SloReport, SloTracker, WindowBurn};
pub use span::{BatchTrace, RequestSpan, StageBreakdown, STAGES};

use crate::query::Endpoint;
use cumf_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};
use parking_lot::Mutex;
use serde::Value;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for the serving observability layer.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Spans retained in the flight recorder's ring.
    pub ring_capacity: usize,
    /// Slow-request exemplars retained (slowest first).
    pub exemplar_capacity: usize,
    /// End-to-end latency at which a request becomes a slow exemplar.
    pub slow_threshold: Duration,
    /// The service-level objective to track.
    pub slo: SloConfig,
    /// Lifecycle records retained in the event journal's ring.
    pub journal_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            ring_capacity: 256,
            exemplar_capacity: 16,
            slow_threshold: Duration::from_millis(50),
            slo: SloConfig::default(),
            journal_capacity: 1024,
        }
    }
}

/// Per-shard metric handles, registered once per shard index and cached
/// by the engine.
#[derive(Clone, Debug)]
pub struct ShardMetrics {
    /// `items × users` score evaluations this shard performed.
    pub scored: Counter,
    /// Wall-clock seconds per scoring pass on this shard.
    pub pass_seconds: Histogram,
}

/// Per-endpoint metric handles, labeled `endpoint="<token>"`. Registered
/// for every [`Endpoint`] at construction so the full label set is
/// always present on `/metrics`, even before an endpoint's first
/// request.
#[derive(Clone, Debug)]
pub struct EndpointMetrics {
    /// Requests routed to this endpoint (cache hits and per-request
    /// errors included).
    pub requests: Counter,
    /// Batch service time attributed to each of the endpoint's requests
    /// (the engine's cache→respond span; queueing delay is tracked
    /// separately by `serve_queue_delay_seconds`).
    pub latency: Histogram,
}

/// Per-model metric handles, labeled `model="<id>"`. Registered once per
/// model by the [`crate::registry::ModelRegistry`] and cached on each
/// entry, so the hot path never re-resolves a label set.
#[derive(Clone, Debug)]
pub struct ModelMetrics {
    /// Requests this model served (cache hits included).
    pub requests: Counter,
    /// Requests this model answered from the result cache.
    pub cache_hits: Counter,
    /// The epoch this model is currently serving.
    pub epoch: Gauge,
    /// Requests scored for this model in FP32 because `use_fp16` was set
    /// but the published snapshot carries no FP16 copy. A nonzero rate
    /// means the bandwidth halving you configured is silently not
    /// happening — republish with [`crate::store::ModelSnapshot::with_fp16`].
    pub fp16_fallback: Counter,
    /// Requests that asked for approximate retrieval but were scored with
    /// the full exact scan because the published snapshot carries no
    /// centroid index. A nonzero rate means the scan-byte reduction you
    /// configured is silently not happening — republish with
    /// [`crate::store::ModelSnapshot::with_ann`].
    pub ann_fallback: Counter,
    /// Publishes to this model that left the engine's resident bytes over
    /// the configured soft memory budget (warn-only; nothing is evicted).
    pub budget_exceeded: Counter,
}

/// Typed handles for every serving metric, backed by one
/// [`MetricsRegistry`]. Names follow Prometheus conventions: `serve_`
/// prefix, `_total` counters, `_seconds` unit suffix, labels for
/// dimensions (`shard`, `stage`, `window`).
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    registry: Arc<MetricsRegistry>,
    /// Requests entering the engine (cache hits included).
    pub requests: Counter,
    /// Engine micro-batches served.
    pub batches: Counter,
    /// Requests answered from the result cache.
    pub cache_hits: Counter,
    /// Known-user requests that missed the cache and were scored.
    pub cache_misses: Counter,
    /// Cold users folded in.
    pub cold_users: Counter,
    /// Requests shed at admission.
    pub shed: Counter,
    /// End-to-end latency (submit → batch end), per request.
    pub request_latency: Histogram,
    /// Admission queueing delay (submit → batch start), per request.
    pub queue_delay: Histogram,
    /// Model epoch currently being served.
    pub epoch: Gauge,
    /// Factor bytes the blocked scorer streamed while scanning item
    /// blocks, summed over every scoring pass (cache hits bypass the scan
    /// and add nothing). With a wall-clock denominator this is the
    /// engine's effective scan bandwidth.
    pub scan_bytes: Counter,
    /// Clusters probed by approximate-retrieval scoring passes, summed
    /// over arms, shards, and users. 0 on exact engines.
    pub ann_probed: Counter,
    /// Stage-2 shortlist rows scored by approximate-retrieval passes
    /// (candidate items scanned after the centroid probe). 0 on exact
    /// engines.
    pub ann_candidates: Counter,
    /// Shortlist rows rescored exactly in FP32 after an int8 scan. The
    /// rescore fraction is `ann_rescored / ann_candidates`.
    pub ann_rescored: Counter,
    /// Entries resident in the result cache, summed over stripes.
    /// Refreshed on demand ([`crate::engine::ServeEngine::refresh_memory_gauges`]),
    /// not per batch — the stats walk is O(entries).
    pub cache_entries: Gauge,
    /// Estimated resident bytes of the result cache, summed over stripes.
    /// Same refresh cadence as `cache_entries`.
    pub cache_bytes: Gauge,
    /// Per-batch stage durations, labeled `stage="cache"|...|"respond"`
    /// (the queue stage is per-request: see `queue_delay`).
    stages: Vec<(&'static str, Histogram)>,
    /// Per-endpoint request counters and latency histograms, indexed in
    /// [`Endpoint::ALL`] order.
    endpoints: Vec<EndpointMetrics>,
}

impl ServeMetrics {
    /// Register every serving metric on `registry` (idempotent — two
    /// `ServeMetrics` on one registry share all handles).
    pub fn new(registry: Arc<MetricsRegistry>) -> ServeMetrics {
        let stages = STAGES
            .iter()
            .filter(|&&s| s != "queue")
            .map(|&s| {
                (
                    s,
                    registry.histogram_with(
                        "serve_stage_seconds",
                        "Engine batch-stage durations",
                        &[("stage", s)],
                    ),
                )
            })
            .collect();
        let endpoints = Endpoint::ALL
            .iter()
            .map(|e| EndpointMetrics {
                requests: registry.counter_with(
                    "serve_endpoint_requests_total",
                    "Requests per serving endpoint",
                    &[("endpoint", e.name())],
                ),
                latency: registry.histogram_with(
                    "serve_endpoint_latency_seconds",
                    "Batch service time attributed per request, per endpoint",
                    &[("endpoint", e.name())],
                ),
            })
            .collect();
        ServeMetrics {
            requests: registry.counter("serve_requests_total", "Requests entering the engine"),
            batches: registry.counter("serve_batches_total", "Engine micro-batches served"),
            cache_hits: registry.counter("serve_cache_hits_total", "Result-cache hits"),
            cache_misses: registry
                .counter("serve_cache_misses_total", "Known-user cache misses scored"),
            cold_users: registry.counter("serve_cold_users_total", "Cold users folded in"),
            shed: registry.counter("serve_shed_total", "Requests shed at admission"),
            request_latency: registry.histogram(
                "serve_request_latency_seconds",
                "End-to-end request latency (submit to batch end)",
            ),
            queue_delay: registry.histogram(
                "serve_queue_delay_seconds",
                "Admission queueing delay (submit to batch start)",
            ),
            epoch: registry.gauge("serve_model_epoch", "Model epoch currently served"),
            scan_bytes: registry.counter(
                "serve_scan_bytes_total",
                "Factor bytes streamed by scoring scans (cache hits excluded)",
            ),
            ann_probed: registry.counter(
                "serve_ann_probed_clusters_total",
                "Clusters probed by approximate-retrieval scoring passes",
            ),
            ann_candidates: registry.counter(
                "serve_ann_shortlist_items_total",
                "Stage-2 shortlist rows scored by approximate retrieval",
            ),
            ann_rescored: registry.counter(
                "serve_ann_rescored_items_total",
                "Shortlist rows rescored exactly in FP32 after an int8 scan",
            ),
            cache_entries: registry.gauge(
                "serve_cache_entries",
                "Entries resident in the result cache (all stripes)",
            ),
            cache_bytes: registry.gauge(
                "serve_cache_bytes",
                "Estimated resident bytes of the result cache (all stripes)",
            ),
            stages,
            endpoints,
            registry,
        }
    }

    /// Handles for one serving endpoint (pre-registered at construction,
    /// so the lookup is an array index, never a label resolve).
    pub fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        let idx = match e {
            Endpoint::TopK => 0,
            Endpoint::SimilarItems => 1,
            Endpoint::SimilarUsers => 2,
            Endpoint::RankItems => 3,
            Endpoint::Explain => 4,
        };
        &self.endpoints[idx]
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Handles for model `name` (registered on first use, cached by the
    /// registry on each model entry).
    pub fn model(&self, name: &str) -> ModelMetrics {
        ModelMetrics {
            requests: self.registry.counter_with(
                "serve_model_requests_total",
                "Requests served per model",
                &[("model", name)],
            ),
            cache_hits: self.registry.counter_with(
                "serve_model_cache_hits_total",
                "Result-cache hits per model",
                &[("model", name)],
            ),
            epoch: self.registry.gauge_with(
                "serve_model_epoch_current",
                "Epoch currently served, per model",
                &[("model", name)],
            ),
            fp16_fallback: self.registry.counter_with(
                "serve_fp16_fallback_total",
                "Requests scored in FP32 because the snapshot has no FP16 copy",
                &[("model", name)],
            ),
            ann_fallback: self.registry.counter_with(
                "serve_ann_fallback_total",
                "Approximate-retrieval requests scored exactly because the snapshot has no centroid index",
                &[("model", name)],
            ),
            budget_exceeded: self.registry.counter_with(
                "serve_mem_budget_exceeded_total",
                "Publishes that left resident bytes over the soft memory budget",
                &[("model", name)],
            ),
        }
    }

    /// Gauge for the resident bytes of one footprint-tree node
    /// ([`cumf_telemetry::FootprintReport::flatten`] path), labeled
    /// `component="<path>",model="<id>"`. Model-agnostic components
    /// (cache, flight recorder) use `model=""`.
    pub fn mem_bytes(&self, component: &str, model: &str) -> Gauge {
        self.registry.gauge_with(
            "serve_mem_bytes",
            "Resident bytes per footprint-tree component",
            &[("component", component), ("model", model)],
        )
    }

    /// Counter for requests failed with [`crate::ServeError`] reason
    /// token `reason` (see `ServeError::reason`), labeled
    /// `reason="<token>"`.
    pub fn error(&self, reason: &str) -> Counter {
        self.registry.counter_with(
            "serve_errors_total",
            "Requests answered with a ServeError, by reason",
            &[("reason", reason)],
        )
    }

    /// Handles for shard `i` (registered on first use, cached by caller).
    pub fn shard(&self, i: usize) -> ShardMetrics {
        let idx = i.to_string();
        ShardMetrics {
            scored: self.registry.counter_with(
                "serve_shard_scored_total",
                "Score evaluations per shard",
                &[("shard", &idx)],
            ),
            pass_seconds: self.registry.histogram_with(
                "serve_shard_pass_seconds",
                "Per-batch scoring-pass duration per shard",
                &[("shard", &idx)],
            ),
        }
    }

    /// Record one batch's stage durations from its trace.
    pub fn observe_batch_stages(&self, trace: &BatchTrace) {
        for (name, h) in &self.stages {
            let dur = match *name {
                "cache" => trace.cache_done - trace.start,
                "foldin" => trace.foldin_done - trace.cache_done,
                "score" => trace.score_done - trace.foldin_done,
                "merge" => trace.merge_done - trace.score_done,
                "respond" => trace.end - trace.merge_done,
                _ => unreachable!("queue is excluded at construction"),
            };
            h.observe_secs(dur.max(0.0));
        }
    }
}

/// The serving observability bundle: metrics + flight recorder + SLO
/// tracker behind one handle. Created by the engine from [`ObsConfig`];
/// everything is internally synchronized, so clones of the `Arc` may be
/// read (exposition) while the worker writes.
#[derive(Debug)]
pub struct ServeObs {
    metrics: ServeMetrics,
    flight: FlightRecorder,
    slo: SloTracker,
    journal: EventJournal,
    /// The engine clock's origin: every span, SLO bucket, and journal
    /// record is stamped in seconds since this instant.
    started: Instant,
    /// Whether the SLO was fast-burning at the last gauge refresh — the
    /// edge detector behind `SloBurnEntered`/`SloBurnExited`.
    burn_firing: AtomicBool,
    /// Shed-burst aggregation: `(last_emit_time, sheds_since_then)`.
    shed_burst: Mutex<(f64, u64)>,
}

impl ServeObs {
    /// Build the bundle on a fresh registry.
    pub fn new(cfg: ObsConfig) -> ServeObs {
        ServeObs::with_registry(cfg, Arc::new(MetricsRegistry::new()))
    }

    /// Build the bundle on an existing registry (e.g. one shared with
    /// other subsystems exposing on the same endpoint).
    pub fn with_registry(cfg: ObsConfig, registry: Arc<MetricsRegistry>) -> ServeObs {
        ServeObs {
            metrics: ServeMetrics::new(Arc::clone(&registry)),
            flight: FlightRecorder::new(
                cfg.ring_capacity,
                cfg.exemplar_capacity,
                cfg.slow_threshold.as_secs_f64(),
            ),
            slo: SloTracker::new(cfg.slo),
            journal: EventJournal::new(cfg.journal_capacity, registry),
            started: Instant::now(),
            burn_firing: AtomicBool::new(false),
            shed_burst: Mutex::new((f64::NEG_INFINITY, 0)),
        }
    }

    /// Seconds since this bundle was built — the engine clock. Every
    /// span, SLO bucket, and journal record shares this time base
    /// ([`crate::engine::ServeEngine::now`] delegates here).
    pub fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The typed metric handles.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The SLO tracker.
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// The lifecycle event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Record one completed request span: latency + queue-delay
    /// histograms, the flight recorder, and the SLO tracker.
    pub fn observe_completion(&self, span: &RequestSpan) {
        self.metrics.request_latency.observe_secs(span.e2e());
        self.metrics.queue_delay.observe_secs(span.stages.queue);
        self.flight.observe(span);
        self.slo.record(span.finished_at, span.e2e());
    }

    /// Record one shed request at engine time `now`. Sheds are journaled
    /// as rate-limited `ShedBurst` records — at most one per second,
    /// folding the sheds since the previous record into its `count` — so
    /// an overload storm cannot flush the lifecycle history out of the
    /// ring (`serve_shed_total` stays exact regardless).
    pub fn observe_shed(&self, now: f64) {
        self.metrics.shed.inc();
        self.slo.record_shed(now);
        let emit = {
            let mut burst = self.shed_burst.lock();
            burst.1 += 1;
            if now - burst.0 >= 1.0 {
                let count = burst.1;
                *burst = (now, 0);
                Some(count)
            } else {
                None
            }
        };
        if let Some(count) = emit {
            self.journal
                .record(now, None, EventKind::ShedBurst { count });
        }
    }

    /// Refresh the derived SLO gauges (`serve_slo_compliance`,
    /// `serve_slo_burn_rate{window=...}`) from the tracker's state at
    /// engine time `now`. This is also the fast-burn edge detector: when
    /// the short-window burn rate crosses the configured
    /// [`SloConfig::fast_burn_threshold`] in either direction, a
    /// `SloBurnEntered` / `SloBurnExited` record is journaled. Every
    /// scrape of `/metrics` runs this, so the journal sees transitions
    /// even between request bursts.
    pub fn refresh_slo_gauges(&self, now: f64) -> SloReport {
        let report = self.slo.report(now);
        let reg = self.metrics.registry();
        reg.gauge("serve_slo_compliance", "Lifetime good fraction vs the SLO")
            .set(report.compliance);
        for w in &report.burn_rates {
            let label = format!("{}s", w.window_secs);
            reg.gauge_with(
                "serve_slo_burn_rate",
                "Windowed bad fraction over the error budget",
                &[("window", &label)],
            )
            .set(w.burn);
        }
        let short = &report.burn_rates[0];
        let firing = short.burn >= self.slo.config().fast_burn_threshold;
        let was_firing = self.burn_firing.swap(firing, Ordering::AcqRel);
        if firing != was_firing {
            let transition = if firing {
                EventKind::SloBurnEntered {
                    window_secs: short.window_secs,
                    burn: short.burn,
                }
            } else {
                EventKind::SloBurnExited {
                    window_secs: short.window_secs,
                    burn: short.burn,
                }
            };
            self.journal.record(now, None, transition);
        }
        report
    }

    /// Whether the SLO was fast-burning as of the last
    /// [`ServeObs::refresh_slo_gauges`] call — the `slo_fast_burn`
    /// readiness check reads this after refreshing.
    pub fn fast_burn_firing(&self) -> bool {
        self.burn_firing.load(Ordering::Acquire)
    }

    /// Prometheus text exposition of every serving metric, with the SLO
    /// gauges refreshed at engine time `now`.
    pub fn render_prometheus(&self, now: f64) -> String {
        self.refresh_slo_gauges(now);
        self.metrics.registry().render_prometheus()
    }

    /// JSON snapshot of every serving metric, SLO gauges refreshed at
    /// engine time `now`.
    pub fn snapshot(&self, now: f64) -> Value {
        self.refresh_slo_gauges(now);
        self.metrics.registry().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, submitted: f64, end: f64) -> RequestSpan {
        let trace = BatchTrace {
            start: submitted + (end - submitted) * 0.25,
            cache_done: submitted + (end - submitted) * 0.35,
            foldin_done: submitted + (end - submitted) * 0.45,
            score_done: submitted + (end - submitted) * 0.8,
            merge_done: submitted + (end - submitted) * 0.9,
            end,
            requests: 2,
            cache_hits: 0,
            cold_users: 0,
            scored_users: 2,
            errors: 0,
            arms: vec![(crate::registry::ModelId::from("default"), 3)],
            shard_timings: vec![],
            scan_bytes: 0,
            score_flops: 0,
            ann_probed: 0,
            ann_candidates: 0,
            ann_rescored: 0,
        };
        RequestSpan::from_batch(&trace, id, submitted, false, false)
    }

    #[test]
    fn completion_flows_into_metrics_flight_and_slo() {
        let obs = ServeObs::new(ObsConfig {
            slow_threshold: Duration::from_millis(10),
            ..ObsConfig::default()
        });
        obs.observe_completion(&span(1, 0.0, 0.002)); // fast
        obs.observe_completion(&span(2, 1.0, 1.2)); // slow: exemplar + breach
        obs.observe_shed(1.3);
        assert_eq!(obs.metrics().request_latency.snapshot().count(), 2);
        assert_eq!(obs.flight().exemplars().len(), 1);
        assert_eq!(obs.flight().slowest().unwrap().request_id, 2);
        let report = obs.refresh_slo_gauges(1.3);
        assert_eq!((report.total, report.breached, report.shed), (3, 1, 1));
        let text = obs.render_prometheus(1.3);
        assert!(text.contains("serve_slo_compliance"));
        assert!(text.contains("serve_slo_burn_rate{window=\"1s\"}"));
        assert!(text.contains("serve_shed_total 1"));
        assert!(text.contains("serve_request_latency_seconds_count 2"));
    }

    #[test]
    fn memory_metric_families_register_and_render() {
        let obs = ServeObs::new(ObsConfig::default());
        obs.metrics().scan_bytes.add(4096);
        obs.metrics().cache_entries.set(3.0);
        obs.metrics().cache_bytes.set(1536.0);
        obs.metrics()
            .mem_bytes("registry/m0/store", "m0")
            .set(2048.0);
        obs.metrics().ann_probed.add(12);
        obs.metrics().ann_candidates.add(300);
        obs.metrics().ann_rescored.add(40);
        let m = obs.metrics().model("m0");
        m.fp16_fallback.add(2);
        m.budget_exceeded.inc();
        m.ann_fallback.inc();
        let text = obs.render_prometheus(0.0);
        assert!(text.contains("serve_scan_bytes_total 4096"));
        assert!(text.contains("serve_ann_probed_clusters_total 12"));
        assert!(text.contains("serve_ann_shortlist_items_total 300"));
        assert!(text.contains("serve_ann_rescored_items_total 40"));
        assert!(text.contains("serve_ann_fallback_total{model=\"m0\"} 1"));
        assert!(text.contains("serve_cache_entries 3"));
        assert!(text.contains("serve_cache_bytes 1536"));
        assert!(text.contains("serve_mem_bytes{component=\"registry/m0/store\",model=\"m0\"} 2048"));
        assert!(text.contains("serve_fp16_fallback_total{model=\"m0\"} 2"));
        assert!(text.contains("serve_mem_budget_exceeded_total{model=\"m0\"} 1"));
        // Handles are idempotent: re-resolving points at the same gauge.
        assert_eq!(
            obs.metrics().mem_bytes("registry/m0/store", "m0").get(),
            2048.0
        );
    }

    #[test]
    fn endpoint_label_set_is_fully_registered_up_front() {
        let obs = ServeObs::new(ObsConfig::default());
        // Every endpoint's series exists before any traffic, so a scrape
        // always sees the full endpoint= label set.
        let text = obs.render_prometheus(0.0);
        for name in [
            "topk",
            "similar_items",
            "similar_users",
            "rank_items",
            "explain",
        ] {
            assert!(
                text.contains(&format!(
                    "serve_endpoint_requests_total{{endpoint=\"{name}\"}} 0"
                )),
                "missing endpoint series {name}: {text}"
            );
        }
        let ep = obs.metrics().endpoint(Endpoint::SimilarItems);
        ep.requests.add(2);
        ep.latency.observe_secs(0.001);
        let text = obs.render_prometheus(0.0);
        assert!(text.contains("serve_endpoint_requests_total{endpoint=\"similar_items\"} 2"));
        assert!(text.contains("serve_endpoint_latency_seconds_count{endpoint=\"similar_items\"} 1"));
    }

    #[test]
    fn shed_storms_fold_into_rate_limited_burst_records() {
        let obs = ServeObs::new(ObsConfig::default());
        // First shed opens a burst record immediately…
        obs.observe_shed(10.0);
        // …then a storm inside the same second stays folded…
        for i in 0..50 {
            obs.observe_shed(10.0 + i as f64 * 0.01);
        }
        // …until the next shed beyond the rate limit flushes the fold.
        obs.observe_shed(11.5);
        let bursts: Vec<_> = obs
            .journal()
            .records()
            .into_iter()
            .filter_map(|r| match r.kind {
                EventKind::ShedBurst { count } => Some(count),
                _ => None,
            })
            .collect();
        assert_eq!(bursts, vec![1, 51], "storm must fold, not flood");
        assert_eq!(obs.metrics().shed.get(), 52, "counter stays exact");
    }

    #[test]
    fn burn_transitions_are_journaled_on_refresh() {
        let obs = ServeObs::new(ObsConfig {
            slo: SloConfig {
                error_budget: 0.01,
                ..SloConfig::default()
            },
            ..ObsConfig::default()
        });
        assert!(!obs.fast_burn_firing());
        // Ten sheds in one second: burn = 1.0/0.01 = 100 ≥ threshold 10.
        for i in 0..10 {
            obs.observe_shed(5.0 + i as f64 * 0.05);
        }
        obs.refresh_slo_gauges(5.6);
        assert!(obs.fast_burn_firing());
        // Repeated refresh while firing: no duplicate transition record.
        obs.refresh_slo_gauges(5.7);
        // The window ages out; the next refresh journals the exit.
        obs.refresh_slo_gauges(30.0);
        assert!(!obs.fast_burn_firing());
        let kinds: Vec<_> = obs
            .journal()
            .records()
            .iter()
            .map(|r| r.kind.name())
            .filter(|k| k.starts_with("SloBurn"))
            .collect();
        assert_eq!(kinds, vec!["SloBurnEntered", "SloBurnExited"]);
    }

    #[test]
    fn engine_clock_is_monotone() {
        let obs = ServeObs::new(ObsConfig::default());
        let a = obs.now();
        let b = obs.now();
        assert!(b >= a);
    }

    #[test]
    fn two_metrics_views_share_one_registry() {
        let obs = ServeObs::new(ObsConfig::default());
        let again = ServeMetrics::new(Arc::clone(obs.metrics().registry()));
        obs.metrics().requests.add(5);
        assert_eq!(again.requests.get(), 5, "same underlying counter");
        // Shard handles are idempotent too.
        obs.metrics().shard(3).scored.add(7);
        assert_eq!(again.shard(3).scored.get(), 7);
    }

    #[test]
    fn batch_stage_histograms_cover_the_service_time() {
        let obs = ServeObs::new(ObsConfig::default());
        let trace = BatchTrace {
            start: 0.025,
            cache_done: 0.035,
            foldin_done: 0.045,
            score_done: 0.08,
            merge_done: 0.09,
            end: 0.1,
            requests: 2,
            cache_hits: 0,
            cold_users: 0,
            scored_users: 2,
            errors: 0,
            arms: vec![(crate::registry::ModelId::from("default"), 0)],
            shard_timings: vec![],
            scan_bytes: 0,
            score_flops: 0,
            ann_probed: 0,
            ann_candidates: 0,
            ann_rescored: 0,
        };
        obs.metrics().observe_batch_stages(&trace);
        let total: f64 = STAGES
            .iter()
            .filter(|&&n| n != "queue")
            .map(|&n| {
                obs.metrics()
                    .stages
                    .iter()
                    .find(|(name, _)| *name == n)
                    .unwrap()
                    .1
                    .snapshot()
                    .sum()
            })
            .sum();
        assert!((total - trace.service_secs()).abs() < 1e-9);
    }
}
