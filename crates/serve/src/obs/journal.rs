//! The lifecycle event journal: typed, engine-clock-timestamped audit
//! records of everything operationally significant that happened to a
//! serving process.
//!
//! Metrics answer "how much"; the journal answers "what happened, in what
//! order". Every registry mutation (register / publish / canary / promote
//! / rollback / retire), every SLO fast-burn transition, every
//! memory-budget breach, and every shed burst lands here as a
//! [`JournalRecord`] — a monotone sequence number, a timestamp on the
//! engine clock ([`crate::obs::ServeObs::now`]), an optional model id,
//! and a typed [`EventKind`] payload. The records live in a bounded ring
//! (oldest evicted first), export as JSON or JSONL, and each emission
//! increments `serve_events_total{kind=…}` so scrape-side alerting can
//! trigger on lifecycle churn without parsing the journal itself.
//!
//! The journal is the audit backbone of the `/debug/events` endpoint
//! ([`crate::obs::http`]); see `docs/OBSERVABILITY.md` for the record
//! schema.

use crate::registry::ModelId;
use cumf_telemetry::MetricsRegistry;
use parking_lot::Mutex;
use serde::Value;
use std::collections::VecDeque;
use std::sync::Arc;

/// What happened. Each variant carries only the payload that is not
/// already on the enclosing [`JournalRecord`] (time, model, sequence).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// A model was registered (its epoch-0 snapshot published alongside,
    /// recorded as a separate [`EventKind::SnapshotPublished`]).
    ModelRegistered,
    /// A snapshot (epoch) of a model's item factors went live.
    SnapshotPublished {
        /// The epoch now being served.
        epoch: u64,
        /// Resident bytes of the published snapshot (factors plus any
        /// FP16 / int8 / centroid-index sidecars).
        bytes: u64,
    },
    /// A canary policy was installed or replaced; the record's model is
    /// the candidate.
    CanarySet {
        /// Fraction of unaddressed traffic routed to the candidate.
        fraction: f64,
    },
    /// The canary candidate became the default alias.
    Promoted,
    /// The canary policy was cleared without promotion.
    RolledBack,
    /// A model was retired from serving (tombstoned, memory retained).
    Retired,
    /// The short-window SLO burn rate crossed above the fast-burn
    /// threshold ([`crate::obs::slo::SloConfig::fast_burn_threshold`]).
    SloBurnEntered {
        /// The window the burn was measured over, in seconds.
        window_secs: f64,
        /// The burn rate at the transition.
        burn: f64,
    },
    /// The short-window burn rate dropped back below the threshold.
    SloBurnExited {
        /// The window the burn was measured over, in seconds.
        window_secs: f64,
        /// The burn rate at the transition.
        burn: f64,
    },
    /// A publish left the engine's resident bytes over the configured
    /// soft memory budget (warn-only; nothing was evicted).
    MemBudgetExceeded {
        /// Resident bytes after the publish.
        resident_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// Requests were shed at admission. Rate-limited to at most one
    /// record per second; `count` is the sheds folded into this record
    /// (the `serve_shed_total` counter stays exact).
    ShedBurst {
        /// Sheds since the previous `ShedBurst` record.
        count: u64,
    },
    /// A serving endpoint ([`crate::engine::Query`] shape) answered its
    /// first request on this engine. Recorded once per endpoint per
    /// engine, so the journal shows which parts of the query surface a
    /// process actually exercised.
    EndpointFirstServed {
        /// The endpoint's stable token (the `endpoint=` metric label).
        endpoint: &'static str,
    },
}

impl EventKind {
    /// Stable name of this event kind: the `kind` field of the JSON
    /// record and the `kind` label on `serve_events_total`.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ModelRegistered => "ModelRegistered",
            EventKind::SnapshotPublished { .. } => "SnapshotPublished",
            EventKind::CanarySet { .. } => "CanarySet",
            EventKind::Promoted => "Promoted",
            EventKind::RolledBack => "RolledBack",
            EventKind::Retired => "Retired",
            EventKind::SloBurnEntered { .. } => "SloBurnEntered",
            EventKind::SloBurnExited { .. } => "SloBurnExited",
            EventKind::MemBudgetExceeded { .. } => "MemBudgetExceeded",
            EventKind::ShedBurst { .. } => "ShedBurst",
            EventKind::EndpointFirstServed { .. } => "EndpointFirstServed",
        }
    }

    /// The variant's payload fields as `(name, value)` pairs, flattened
    /// into the record's JSON object.
    fn payload(&self) -> Vec<(String, Value)> {
        match *self {
            EventKind::SnapshotPublished { epoch, bytes } => vec![
                ("epoch".into(), Value::Num(epoch as f64)),
                ("bytes".into(), Value::Num(bytes as f64)),
            ],
            EventKind::CanarySet { fraction } => {
                vec![("fraction".into(), Value::Num(fraction))]
            }
            EventKind::SloBurnEntered { window_secs, burn }
            | EventKind::SloBurnExited { window_secs, burn } => vec![
                ("window_secs".into(), Value::Num(window_secs)),
                ("burn".into(), Value::Num(burn)),
            ],
            EventKind::MemBudgetExceeded {
                resident_bytes,
                budget_bytes,
            } => vec![
                ("resident_bytes".into(), Value::Num(resident_bytes as f64)),
                ("budget_bytes".into(), Value::Num(budget_bytes as f64)),
            ],
            EventKind::ShedBurst { count } => {
                vec![("count".into(), Value::Num(count as f64))]
            }
            EventKind::EndpointFirstServed { endpoint } => {
                vec![("endpoint".into(), Value::Str(endpoint.into()))]
            }
            _ => vec![],
        }
    }
}

/// One journal entry: when, which model (if any), and what happened.
#[derive(Clone, Debug)]
pub struct JournalRecord {
    /// Monotone sequence number, 0-based over the journal's lifetime
    /// (eviction never renumbers — gaps at the front mean the ring
    /// wrapped).
    pub seq: u64,
    /// Engine-clock timestamp ([`crate::obs::ServeObs::now`]).
    pub time: f64,
    /// The model the event concerns, when it concerns one.
    pub model: Option<ModelId>,
    /// What happened.
    pub kind: EventKind,
}

impl JournalRecord {
    /// The record as one flat JSON object:
    /// `{seq, time, kind, model?, …payload}`.
    pub fn to_value(&self) -> Value {
        let mut members = vec![
            ("seq".into(), Value::Num(self.seq as f64)),
            ("time".into(), Value::Num(self.time)),
            ("kind".into(), Value::Str(self.kind.name().into())),
        ];
        if let Some(model) = &self.model {
            members.push(("model".into(), Value::Str(model.as_str().into())));
        }
        members.extend(self.kind.payload());
        Value::Object(members)
    }
}

#[derive(Debug)]
struct Inner {
    ring: VecDeque<JournalRecord>,
    next_seq: u64,
}

/// A bounded ring of [`JournalRecord`]s shared by every emitter. All
/// methods take `&self`; emission is a short mutex hold plus one counter
/// increment, cheap enough for control-plane paths (it is never on the
/// per-request hot path — shed records are burst-aggregated upstream).
#[derive(Debug)]
pub struct EventJournal {
    capacity: usize,
    registry: Arc<MetricsRegistry>,
    inner: Mutex<Inner>,
}

impl EventJournal {
    /// A journal retaining the most recent `capacity` records (floored at
    /// 1), counting emissions on `registry` as
    /// `serve_events_total{kind=…}`.
    pub fn new(capacity: usize, registry: Arc<MetricsRegistry>) -> EventJournal {
        EventJournal {
            capacity: capacity.max(1),
            registry,
            inner: Mutex::new(Inner {
                ring: VecDeque::new(),
                next_seq: 0,
            }),
        }
    }

    /// Append one record at engine time `time`; returns its sequence
    /// number.
    pub fn record(&self, time: f64, model: Option<ModelId>, kind: EventKind) -> u64 {
        self.registry
            .counter_with(
                "serve_events_total",
                "Lifecycle journal records emitted, by kind",
                &[("kind", kind.name())],
            )
            .inc();
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
        }
        inner.ring.push_back(JournalRecord {
            seq,
            time,
            model,
            kind,
        });
        seq
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<JournalRecord> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Records emitted over the journal's lifetime (retained or evicted).
    pub fn total(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum records retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The journal as one JSON object:
    /// `{"total": N, "capacity": C, "events": [...]}` — `events` holds
    /// the retained records oldest first.
    pub fn to_value(&self) -> Value {
        let inner = self.inner.lock();
        Value::Object(vec![
            ("total".into(), Value::Num(inner.next_seq as f64)),
            ("capacity".into(), Value::Num(self.capacity as f64)),
            (
                "events".into(),
                Value::Array(inner.ring.iter().map(JournalRecord::to_value).collect()),
            ),
        ])
    }

    /// The retained records as JSONL: one JSON object per line, oldest
    /// first (the streaming-friendly export; `to_value` is the one-shot
    /// document).
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for r in &inner.ring {
            out.push_str(&r.to_value().to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(cap: usize) -> EventJournal {
        EventJournal::new(cap, Arc::new(MetricsRegistry::new()))
    }

    #[test]
    fn records_keep_order_and_monotone_sequence() {
        let j = journal(16);
        j.record(0.1, Some(ModelId::from("m0")), EventKind::ModelRegistered);
        j.record(
            0.2,
            Some(ModelId::from("m0")),
            EventKind::SnapshotPublished {
                epoch: 1,
                bytes: 4096,
            },
        );
        j.record(0.3, None, EventKind::ShedBurst { count: 3 });
        let recs = j.records();
        assert_eq!(recs.len(), 3);
        assert!(recs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(recs.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(recs[1].kind.name(), "SnapshotPublished");
        assert_eq!(recs[2].model, None);
        assert_eq!(j.total(), 3);
    }

    #[test]
    fn ring_evicts_oldest_without_renumbering() {
        let j = journal(2);
        for i in 0..5 {
            j.record(i as f64, None, EventKind::Promoted);
        }
        let recs = j.records();
        assert_eq!(recs.len(), 2);
        assert_eq!((recs[0].seq, recs[1].seq), (3, 4));
        assert_eq!(j.total(), 5);
        assert_eq!(j.capacity(), 2);
    }

    #[test]
    fn json_export_flattens_payloads_and_counts_by_kind() {
        let reg = Arc::new(MetricsRegistry::new());
        let j = EventJournal::new(8, Arc::clone(&reg));
        j.record(
            1.5,
            Some(ModelId::from("champ")),
            EventKind::SnapshotPublished {
                epoch: 7,
                bytes: 1024,
            },
        );
        j.record(
            2.0,
            None,
            EventKind::SloBurnEntered {
                window_secs: 1.0,
                burn: 42.0,
            },
        );
        let v = j.to_value();
        let events = v.get("events").unwrap().as_array().unwrap();
        let first = &events[0];
        assert_eq!(
            first.get("kind").unwrap().as_str(),
            Some("SnapshotPublished")
        );
        assert_eq!(first.get("model").unwrap().as_str(), Some("champ"));
        assert_eq!(first.get("epoch").unwrap().as_f64(), Some(7.0));
        assert_eq!(first.get("bytes").unwrap().as_f64(), Some(1024.0));
        assert_eq!(events[1].get("burn").unwrap().as_f64(), Some(42.0));
        // JSONL: one parseable object per line.
        let jsonl = j.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        for line in jsonl.lines() {
            assert!(Value::parse(line).is_ok(), "unparseable line {line}");
        }
        // Each emission counted under its kind label.
        let text = reg.render_prometheus();
        assert!(text.contains("serve_events_total{kind=\"SnapshotPublished\"} 1"));
        assert!(text.contains("serve_events_total{kind=\"SloBurnEntered\"} 1"));
    }
}
