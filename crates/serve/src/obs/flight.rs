//! The flight recorder: always-on, bounded retention of recent and slow
//! request spans.
//!
//! Production incidents are debugged after the fact; by the time someone
//! looks, the interesting requests are gone unless something retained
//! them. The flight recorder keeps two bounded views, cheap enough to
//! leave on permanently:
//!
//! * a **ring buffer** of the most recent [`RequestSpan`]s (whatever just
//!   happened, slow or not), and
//! * a **tail-latency exemplar sampler**: the slowest spans whose
//!   end-to-end latency exceeded a configured threshold, kept sorted
//!   slowest-first and capped, so the worst requests of a run survive no
//!   matter how much fast traffic follows them.
//!
//! Either view dumps as a Chrome trace via
//! [`RequestSpan::to_chrome_events`] + [`cumf_telemetry::chrome_trace`],
//! which is how `serve_bench --slow-trace-us` materializes a slow-request
//! waterfall.

use super::span::RequestSpan;
use cumf_telemetry::{FootprintReport, MemoryFootprint};
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Bounded retention of recent and slow request spans. All methods take
/// `&self`; one recorder is shared by the admission worker and whoever
/// reads it.
#[derive(Debug)]
pub struct FlightRecorder {
    ring_cap: usize,
    exemplar_cap: usize,
    slow_secs: f64,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    ring: VecDeque<RequestSpan>,
    /// Sorted slowest-first, at most `exemplar_cap` long.
    exemplars: Vec<RequestSpan>,
    seen: u64,
    slow: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `ring_cap` spans and the
    /// `exemplar_cap` slowest spans at or above `slow_secs` end-to-end.
    /// Capacities are floored at 1; `slow_secs` may be 0 to sample every
    /// request as an exemplar candidate.
    pub fn new(ring_cap: usize, exemplar_cap: usize, slow_secs: f64) -> FlightRecorder {
        FlightRecorder {
            ring_cap: ring_cap.max(1),
            exemplar_cap: exemplar_cap.max(1),
            slow_secs: slow_secs.max(0.0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The slow-exemplar threshold in seconds.
    pub fn slow_threshold_secs(&self) -> f64 {
        self.slow_secs
    }

    /// Record one completed span.
    pub fn observe(&self, span: &RequestSpan) {
        let mut inner = self.inner.lock();
        inner.seen += 1;
        if inner.ring.len() == self.ring_cap {
            inner.ring.pop_front();
        }
        inner.ring.push_back(span.clone());
        if span.e2e() >= self.slow_secs {
            inner.slow += 1;
            // Insert keeping slowest-first order; ties keep insertion
            // order (stable position search), then cap.
            let pos = inner.exemplars.partition_point(|s| s.e2e() >= span.e2e());
            if pos < self.exemplar_cap {
                inner.exemplars.insert(pos, span.clone());
                inner.exemplars.truncate(self.exemplar_cap);
            }
        }
    }

    /// The retained recent spans, oldest first.
    pub fn recent(&self) -> Vec<RequestSpan> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// The retained slow exemplars, slowest first.
    pub fn exemplars(&self) -> Vec<RequestSpan> {
        self.inner.lock().exemplars.clone()
    }

    /// The single slowest span seen above the threshold, if any.
    pub fn slowest(&self) -> Option<RequestSpan> {
        self.inner.lock().exemplars.first().cloned()
    }

    /// `(spans observed, spans at or above the slow threshold)`.
    pub fn totals(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.seen, inner.slow)
    }

    /// Dump the slow exemplars as a Chrome trace-event JSON document
    /// (empty trace if nothing crossed the threshold).
    pub fn exemplar_trace(&self) -> String {
        chrome_trace_for(&self.exemplars())
    }
}

impl MemoryFootprint for FlightRecorder {
    /// Children: `ring` and `exemplars`, each `retained spans ×
    /// size_of::<RequestSpan>()`. Exact for the spans themselves
    /// (`RequestSpan` owns no heap data); the `VecDeque`/`Vec` slack
    /// between `len` and capacity is not counted.
    fn footprint(&self) -> FootprintReport {
        let span = std::mem::size_of::<RequestSpan>() as u64;
        let inner = self.inner.lock();
        FootprintReport::branch(
            "flight_recorder",
            vec![
                FootprintReport::leaf("ring", inner.ring.len() as u64 * span),
                FootprintReport::leaf("exemplars", inner.exemplars.len() as u64 * span),
            ],
        )
    }
}

/// Render any set of spans as one Chrome trace-event JSON document.
pub fn chrome_trace_for(spans: &[RequestSpan]) -> String {
    let events: Vec<_> = spans
        .iter()
        .flat_map(RequestSpan::to_chrome_events)
        .collect();
    cumf_telemetry::chrome_trace(&events)
}

#[cfg(test)]
mod tests {
    use super::super::span::{BatchTrace, RequestSpan};
    use super::*;

    fn span(id: u64, e2e: f64) -> RequestSpan {
        let trace = BatchTrace {
            start: 10.0,
            cache_done: 10.0 + e2e * 0.1,
            foldin_done: 10.0 + e2e * 0.2,
            score_done: 10.0 + e2e * 0.7,
            merge_done: 10.0 + e2e * 0.8,
            end: 10.0 + e2e,
            requests: 1,
            cache_hits: 0,
            cold_users: 0,
            scored_users: 1,
            errors: 0,
            arms: vec![(crate::registry::ModelId::from("default"), 0)],
            shard_timings: vec![],
            scan_bytes: 0,
            score_flops: 0,
            ann_probed: 0,
            ann_candidates: 0,
            ann_rescored: 0,
        };
        RequestSpan::from_batch(&trace, id, 10.0, false, false)
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let fr = FlightRecorder::new(3, 4, f64::MAX);
        for id in 0..5 {
            fr.observe(&span(id, 0.001));
        }
        let ids: Vec<u64> = fr.recent().iter().map(|s| s.request_id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(fr.totals(), (5, 0));
        assert!(fr.slowest().is_none());
    }

    #[test]
    fn exemplars_keep_the_slowest_above_threshold() {
        let fr = FlightRecorder::new(8, 2, 0.010);
        for (id, e2e) in [(0, 0.005), (1, 0.020), (2, 0.015), (3, 0.050), (4, 0.001)] {
            fr.observe(&span(id, e2e));
        }
        let ids: Vec<u64> = fr.exemplars().iter().map(|s| s.request_id).collect();
        assert_eq!(ids, vec![3, 1], "slowest first, capped at 2");
        assert_eq!(fr.slowest().unwrap().request_id, 3);
        assert_eq!(fr.totals(), (5, 3));
    }

    #[test]
    fn footprint_counts_retained_spans() {
        let fr = FlightRecorder::new(3, 2, 0.010);
        assert_eq!(fr.footprint().total_bytes(), 0, "empty recorder, 0 bytes");
        for id in 0..5 {
            fr.observe(&span(id, 0.020));
        }
        let r = fr.footprint();
        assert!(r.verify());
        // Ring capped at 3, exemplars at 2.
        let per = std::mem::size_of::<RequestSpan>() as u64;
        assert_eq!(r.total_bytes(), 5 * per);
    }

    #[test]
    fn exemplar_trace_is_a_chrome_document() {
        let fr = FlightRecorder::new(4, 4, 0.0);
        fr.observe(&span(7, 0.002));
        let json = fr.exemplar_trace();
        assert!(json.contains("traceEvents"));
        assert!(json.contains("request 7"));
        assert!(json.contains("stage.score"));
    }
}
