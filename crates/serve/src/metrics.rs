//! Ranking quality metrics for the serving path.
//!
//! Training quality is measured by RMSE (`cumf_als::metrics`); serving
//! quality is a *ranking* question — did quantization or caching change
//! which items surface? NDCG@k answers it: 1.0 means the evaluated ranking
//! ordered items exactly as well as the ideal ordering of the relevance
//! scores, and the discount makes swaps near the top cost more than swaps
//! near the cut-off. [`overlap_at_k`] is the coarser set-level companion:
//! what fraction of the top-k two rankers agree on at all.

use crate::topk::ScoredItem;

/// Discounted cumulative gain of `ranking`'s first `k` entries, where
/// `relevance[item]` grades each item. Gains are linear (`rel / log2(pos+2)`),
/// the standard form when relevance is itself a model score.
pub fn dcg_at_k(ranking: &[ScoredItem], relevance: &[f32], k: usize) -> f64 {
    ranking
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, s)| relevance[s.item as usize] as f64 / ((pos + 2) as f64).log2())
        .sum()
}

/// Normalized DCG@k of `ranking` against per-item `relevance` grades
/// (indexed by item id; non-negative). Returns 1.0 for an ideal ordering
/// and 0.0 when every retrieved item has zero relevance. Also returns 1.0
/// when the ideal DCG itself is 0 (nothing relevant exists to retrieve).
pub fn ndcg_at_k(ranking: &[ScoredItem], relevance: &[f32], k: usize) -> f64 {
    debug_assert!(
        relevance.iter().all(|&r| r >= 0.0),
        "NDCG needs non-negative relevance grades"
    );
    let dcg = dcg_at_k(ranking, relevance, k);
    let mut ideal: Vec<f32> = relevance.to_vec();
    ideal.sort_unstable_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(pos, &r)| r as f64 / ((pos + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        1.0
    } else {
        dcg / idcg
    }
}

/// Fraction of the first `k` items two rankings share, order-ignored
/// (`|A∩B| / k`, with `k` clamped to the shorter prefix actually
/// available). 1.0 means both rankers surfaced the same set — the
/// question asked when comparing the FP16 path or a sharded deployment
/// against the exact scorer. Returns 1.0 when `k` is 0.
pub fn overlap_at_k(a: &[ScoredItem], b: &[ScoredItem], k: usize) -> f64 {
    let k = k.min(a.len()).min(b.len());
    if k == 0 {
        return 1.0;
    }
    let set: std::collections::HashSet<u32> = a.iter().take(k).map(|s| s.item).collect();
    let shared = b.iter().take(k).filter(|s| set.contains(&s.item)).count();
    shared as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranking(items: &[u32]) -> Vec<ScoredItem> {
        items
            .iter()
            .enumerate()
            .map(|(pos, &item)| ScoredItem {
                item,
                score: -(pos as f32),
            })
            .collect()
    }

    #[test]
    fn ideal_ranking_scores_one() {
        let rel = [3.0, 2.0, 1.0, 0.0];
        assert!((ndcg_at_k(&ranking(&[0, 1, 2, 3]), &rel, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_ranking_scores_below_one() {
        let rel = [3.0, 2.0, 1.0, 0.0];
        let n = ndcg_at_k(&ranking(&[3, 2, 1, 0]), &rel, 4);
        assert!(n < 0.8, "reversed NDCG {n}");
    }

    #[test]
    fn early_swaps_cost_more_than_late_swaps() {
        let rel = [4.0, 3.0, 2.0, 1.0];
        let swap_top = ndcg_at_k(&ranking(&[1, 0, 2, 3]), &rel, 4);
        let swap_bottom = ndcg_at_k(&ranking(&[0, 1, 3, 2]), &rel, 4);
        assert!(swap_top < swap_bottom);
    }

    #[test]
    fn zero_relevance_everywhere_is_defined() {
        let rel = [0.0; 3];
        assert_eq!(ndcg_at_k(&ranking(&[2, 1, 0]), &rel, 3), 1.0);
    }

    #[test]
    fn k_truncates_the_evaluation() {
        let rel = [1.0, 1.0, 5.0];
        // Item 2 (rel 5) missing from the top-2 window hurts.
        let n = ndcg_at_k(&ranking(&[0, 1, 2]), &rel, 2);
        assert!(n < 0.5, "NDCG@2 {n}");
    }

    #[test]
    fn overlap_ignores_order_and_clamps_k() {
        let a = ranking(&[0, 1, 2, 3]);
        let b = ranking(&[3, 2, 1, 0]);
        assert_eq!(overlap_at_k(&a, &b, 4), 1.0);
        assert_eq!(overlap_at_k(&a, &b, 2), 0.0, "top-2 sets are disjoint");
        let half = overlap_at_k(&ranking(&[0, 1]), &ranking(&[1, 9]), 2);
        assert_eq!(half, 0.5);
        // k beyond either list clamps to the shorter prefix.
        assert_eq!(overlap_at_k(&a, &ranking(&[0]), 10), 1.0);
        assert_eq!(overlap_at_k(&a, &b, 0), 1.0);
    }
}
