//! Bench regression gating: compare a fresh `serve_bench --json` summary
//! against the committed `BENCH_serve.json` reference with tolerances.
//!
//! The committed reference used to be schema-checked but never *compared*,
//! so a serving-path performance regression could merge silently. The
//! `bench_diff` binary (thin wrapper over [`diff`]) closes that gap:
//!
//! * throughput may not **drop** by more than `qps_drop_frac`,
//! * p50 / p99 latency may not **rise** by more than their fractions,
//! * the shed fraction may not rise by more than `shed_rise_abs`
//!   (absolute, since the reference is usually 0).
//!
//! Tolerances default to generous values because CI hosts are noisy —
//! the gate exists to catch "3× slower", not "3% slower". Both summaries
//! must carry the same [`SCHEMA_VERSION`] (written by `serve_bench`),
//! so the comparison can evolve safely with the schema.

use serde::Value;

/// Version stamped into `serve_bench --json` output as `schema_version`.
/// Bump when renaming or re-unit-ing any field `bench_diff` reads.
///
/// v3 added the `memory` (resident-bytes component tree) and `bandwidth`
/// (scan bytes, effective GB/s) blocks; `bench_diff` reports them
/// informationally but never gates on them. v4 added the `retrieval`
/// block (mode, `n_probe`, clusters, quant) and, under `--retrieval
/// approx`, the measured `recall` block (recall@k against the exact FP32
/// scan plus the scan-byte ratio); both are likewise informational here —
/// CI gates recall directly on the JSON. v5 added `score_flops` and
/// `effective_gflops` to the `bandwidth` block and, under `--kernels`,
/// the `kernels` microbenchmark block (per-kernel items/s, GB/s,
/// GFLOP/s, plus the fp32-speedup and fp16-over-fp32 ratios) — all
/// informational: kernel throughput is host-shaped and never gates. v6
/// added the `endpoint` token (which `--endpoint` the replay exercised)
/// and the per-endpoint `endpoints` block (requests + latency summary
/// per `endpoint=` label); the per-endpoint rows are informational —
/// traffic mix is workload-shaped, so only the aggregate qps/latency
/// rows gate.
pub const SCHEMA_VERSION: f64 = 6.0;

/// Allowed regressions before the diff fails.
#[derive(Clone, Copy, Debug)]
pub struct DiffTolerances {
    /// Max fractional throughput drop (0.35 = fail below 65% of reference).
    pub qps_drop_frac: f64,
    /// Max fractional p50 latency rise (1.0 = fail above 2× reference).
    pub p50_rise_frac: f64,
    /// Max fractional p99 latency rise.
    pub p99_rise_frac: f64,
    /// Max absolute rise in shed fraction (shed / requests).
    pub shed_rise_abs: f64,
}

impl Default for DiffTolerances {
    fn default() -> DiffTolerances {
        DiffTolerances {
            qps_drop_frac: 0.35,
            p50_rise_frac: 1.0,
            p99_rise_frac: 1.5,
            shed_rise_abs: 0.05,
        }
    }
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct Check {
    /// Metric name (dotted path in the summary).
    pub metric: &'static str,
    /// Reference value.
    pub reference: f64,
    /// Current value.
    pub current: f64,
    /// Signed change in the *bad* direction (fraction of reference, or
    /// absolute for the shed fraction); negative means improvement.
    pub change: f64,
    /// The tolerance this change was held against.
    pub limit: f64,
}

impl Check {
    /// Whether this metric regressed beyond its tolerance.
    pub fn regressed(&self) -> bool {
        self.change > self.limit
    }

    /// Whether this metric is informational only (infinite tolerance):
    /// it is reported in the table but can never regress.
    pub fn informational(&self) -> bool {
        self.limit.is_infinite()
    }
}

/// The outcome of one reference-vs-current comparison.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Every compared metric, in a fixed order.
    pub checks: Vec<Check>,
}

impl DiffReport {
    /// Whether any metric regressed beyond tolerance.
    pub fn regressed(&self) -> bool {
        self.checks.iter().any(Check::regressed)
    }

    /// Human-readable table of the comparison.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<22} {:>14} {:>14} {:>9} {:>9}  verdict\n",
            "metric", "reference", "current", "change", "limit"
        );
        for c in &self.checks {
            let limit = if c.informational() {
                format!("{:>9}", "-")
            } else {
                format!("{:>8.1}%", c.limit * 100.0)
            };
            out.push_str(&format!(
                "{:<22} {:>14.4} {:>14.4} {:>8.1}% {}  {}\n",
                c.metric,
                c.reference,
                c.current,
                c.change * 100.0,
                limit,
                if c.regressed() {
                    "REGRESSED"
                } else if c.informational() {
                    "info"
                } else {
                    "ok"
                }
            ));
        }
        out
    }
}

fn num(v: &Value, path: &[&str]) -> Result<f64, String> {
    let mut cur = v;
    for p in path {
        cur = cur
            .get(p)
            .ok_or_else(|| format!("summary is missing `{}`", path.join(".")))?;
    }
    cur.as_f64()
        .ok_or_else(|| format!("`{}` is not a number", path.join(".")))
}

/// Fractional rise of `cur` over `ref` (0 when the reference is 0 and the
/// current value is too; "infinitely worse" collapses to a large number).
fn rise_frac(reference: f64, current: f64) -> f64 {
    if reference > 0.0 {
        (current - reference) / reference
    } else if current > 0.0 {
        f64::MAX
    } else {
        0.0
    }
}

/// Compare a fresh summary against the committed reference.
///
/// Errors (rather than failing checks) when either summary is missing a
/// field or their `schema_version`s disagree — those are tooling bugs,
/// not performance regressions, and exit differently in `bench_diff`.
pub fn diff(
    reference: &Value,
    current: &Value,
    tol: &DiffTolerances,
) -> Result<DiffReport, String> {
    let ref_schema = num(reference, &["schema_version"])?;
    let cur_schema = num(current, &["schema_version"])?;
    if ref_schema != cur_schema {
        return Err(format!(
            "schema_version mismatch: reference {ref_schema} vs current {cur_schema}"
        ));
    }
    if cur_schema != SCHEMA_VERSION {
        return Err(format!(
            "summaries are schema {cur_schema}, this bench_diff understands {SCHEMA_VERSION}"
        ));
    }

    let mut checks = Vec::new();

    let qps_ref = num(reference, &["qps"])?;
    let qps_cur = num(current, &["qps"])?;
    checks.push(Check {
        metric: "qps",
        reference: qps_ref,
        current: qps_cur,
        // A *drop* is bad for throughput, so the signed change inverts.
        change: if qps_ref > 0.0 {
            (qps_ref - qps_cur) / qps_ref
        } else {
            0.0
        },
        limit: tol.qps_drop_frac,
    });

    for (metric, path, limit) in [
        ("latency_ms.p50", ["latency_ms", "p50"], tol.p50_rise_frac),
        ("latency_ms.p99", ["latency_ms", "p99"], tol.p99_rise_frac),
    ] {
        let r = num(reference, &path)?;
        let c = num(current, &path)?;
        checks.push(Check {
            metric,
            reference: r,
            current: c,
            change: rise_frac(r, c),
            limit,
        });
    }

    let shed_frac = |v: &Value| -> Result<f64, String> {
        let shed = num(v, &["shed"])?;
        let requests = num(v, &["requests"])?;
        Ok(if requests > 0.0 { shed / requests } else { 0.0 })
    };
    let (sr, sc) = (shed_frac(reference)?, shed_frac(current)?);
    checks.push(Check {
        metric: "shed_fraction",
        reference: sr,
        current: sc,
        change: sc - sr,
        limit: tol.shed_rise_abs,
    });

    // Schema-3 memory/bandwidth figures: informational only. Resident
    // bytes are configuration-shaped (model size, cache capacity) and
    // effective GB/s is host-shaped, so neither gates a merge — but a
    // surprise in either deserves eyes, so they ride along in the table.
    // Summaries missing the blocks (hand-trimmed fixtures) are skipped,
    // not errors.
    for (metric, path) in [
        ("memory.resident_bytes", ["memory", "resident_bytes"]),
        ("bandwidth.effective_gbps", ["bandwidth", "effective_gbps"]),
    ] {
        if let (Ok(r), Ok(c)) = (num(reference, &path), num(current, &path)) {
            checks.push(Check {
                metric,
                reference: r,
                current: c,
                change: rise_frac(r, c),
                limit: f64::INFINITY,
            });
        }
    }

    // Schema-6 per-endpoint traffic: informational. The endpoint mix is
    // whatever `--endpoint` the run chose, so a shifted count or a moved
    // per-endpoint p99 is a workload change, not a regression — the
    // aggregate qps/latency rows above do the gating. Older summaries
    // without the block skip the rows.
    for (metric, endpoint) in [
        ("endpoints.topk", "topk"),
        ("endpoints.similar_items", "similar_items"),
        ("endpoints.similar_users", "similar_users"),
        ("endpoints.rank_items", "rank_items"),
        ("endpoints.explain", "explain"),
    ] {
        let path = ["endpoints", endpoint, "requests"];
        if let (Ok(r), Ok(c)) = (num(reference, &path), num(current, &path)) {
            checks.push(Check {
                metric,
                reference: r,
                current: c,
                change: rise_frac(r, c),
                limit: f64::INFINITY,
            });
        }
    }

    // Schema-5 microkernel ratios: informational for the same reason as
    // bandwidth — throughput is host-shaped (vector width, cache sizes),
    // so a number moving between machines means nothing. Runs without
    // `--kernels` simply skip the rows.
    for (metric, path) in [
        ("kernels.fp32_speedup", ["kernels", "fp32_speedup"]),
        ("kernels.fp16_over_fp32", ["kernels", "fp16_over_fp32"]),
    ] {
        if let (Ok(r), Ok(c)) = (num(reference, &path), num(current, &path)) {
            checks.push(Check {
                metric,
                reference: r,
                current: c,
                change: rise_frac(r, c),
                limit: f64::INFINITY,
            });
        }
    }

    Ok(DiffReport { checks })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(qps: f64, p50: f64, p99: f64, shed: f64) -> Value {
        summary_with_memory(qps, p50, p99, shed, 1_000_000.0, 2.5)
    }

    fn summary_with_memory(
        qps: f64,
        p50: f64,
        p99: f64,
        shed: f64,
        resident: f64,
        gbps: f64,
    ) -> Value {
        Value::parse(&format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "qps": {qps}, "requests": 1000,
                "shed": {shed},
                "latency_ms": {{"p50": {p50}, "p99": {p99}}},
                "memory": {{"resident_bytes": {resident}}},
                "bandwidth": {{"effective_gbps": {gbps}}}}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_summaries_pass() {
        let s = summary(4000.0, 0.5, 1.0, 0.0);
        let report = diff(&s, &s, &DiffTolerances::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        assert!(report.checks.iter().all(|c| c.change.abs() < 1e-12));
    }

    #[test]
    fn big_qps_drop_regresses_small_drop_does_not() {
        let reference = summary(4000.0, 0.5, 1.0, 0.0);
        let tol = DiffTolerances::default();
        let mild = diff(&reference, &summary(3000.0, 0.5, 1.0, 0.0), &tol).unwrap();
        assert!(!mild.regressed(), "25% drop within 35% tolerance");
        let severe = diff(&reference, &summary(2000.0, 0.5, 1.0, 0.0), &tol).unwrap();
        assert!(severe.regressed(), "50% drop must fail");
        let check = &severe.checks[0];
        assert_eq!(check.metric, "qps");
        assert!((check.change - 0.5).abs() < 1e-12);
        assert!(severe.render().contains("REGRESSED"));
        // Faster-than-reference is an improvement, never a regression.
        let faster = diff(&reference, &summary(9000.0, 0.5, 1.0, 0.0), &tol).unwrap();
        assert!(!faster.regressed());
    }

    #[test]
    fn latency_and_shed_regressions_are_caught() {
        let reference = summary(4000.0, 0.5, 1.0, 0.0);
        let tol = DiffTolerances::default();
        let slow_p50 = diff(&reference, &summary(4000.0, 1.2, 1.0, 0.0), &tol).unwrap();
        assert!(slow_p50.regressed(), "2.4x p50 over 2x tolerance");
        let slow_p99 = diff(&reference, &summary(4000.0, 0.5, 2.4, 0.0), &tol).unwrap();
        assert!(!slow_p99.regressed(), "2.4x p99 within 2.5x tolerance");
        let shedding = diff(&reference, &summary(4000.0, 0.5, 1.0, 100.0), &tol).unwrap();
        assert!(shedding.regressed(), "10% shed over 5% absolute budget");
    }

    #[test]
    fn memory_and_bandwidth_are_informational_never_gating() {
        let reference = summary(4000.0, 0.5, 1.0, 0.0);
        let tol = DiffTolerances::default();
        // 10× the resident bytes and a collapsed bandwidth: reported, not
        // regressed.
        let bloated = summary_with_memory(4000.0, 0.5, 1.0, 0.0, 10_000_000.0, 0.1);
        let report = diff(&reference, &bloated, &tol).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        let mem = report
            .checks
            .iter()
            .find(|c| c.metric == "memory.resident_bytes")
            .expect("memory check present");
        assert!(mem.informational());
        assert!((mem.change - 9.0).abs() < 1e-12, "10x = +900%");
        assert!(report.render().contains("info"));
        // Summaries without the blocks diff fine (fields skipped).
        let bare = Value::parse(&format!(
            r#"{{"schema_version": {SCHEMA_VERSION}, "qps": 4000.0, "requests": 1000,
                "shed": 0, "latency_ms": {{"p50": 0.5, "p99": 1.0}}}}"#
        ))
        .unwrap();
        let report = diff(&bare, &bare, &tol).unwrap();
        assert!(!report.regressed());
        assert!(!report
            .checks
            .iter()
            .any(|c| c.metric.starts_with("memory") || c.metric.starts_with("bandwidth")));
    }

    #[test]
    fn kernel_ratios_are_informational_and_optional() {
        let tol = DiffTolerances::default();
        let with_kernels = |speedup: f64, f16_ratio: f64| {
            Value::parse(&format!(
                r#"{{"schema_version": {SCHEMA_VERSION}, "qps": 4000.0, "requests": 1000,
                    "shed": 0, "latency_ms": {{"p50": 0.5, "p99": 1.0}},
                    "kernels": {{"fp32_speedup": {speedup}, "fp16_over_fp32": {f16_ratio}}}}}"#
            ))
            .unwrap()
        };
        // A collapsed speedup on the current side is reported, never gated.
        let report = diff(&with_kernels(3.6, 1.6), &with_kernels(0.5, 0.2), &tol).unwrap();
        assert!(!report.regressed(), "{}", report.render());
        let row = report
            .checks
            .iter()
            .find(|c| c.metric == "kernels.fp32_speedup")
            .expect("kernel row present");
        assert!(row.informational());
        // A reference without the block (pre-`--kernels` runs) skips the rows.
        let bare = summary(4000.0, 0.5, 1.0, 0.0);
        let report = diff(&bare, &with_kernels(3.6, 1.6), &tol).unwrap();
        assert!(!report
            .checks
            .iter()
            .any(|c| c.metric.starts_with("kernels")));
    }

    #[test]
    fn endpoint_rows_are_informational_and_optional() {
        let tol = DiffTolerances::default();
        let with_endpoints = |topk: f64, similar: f64| {
            Value::parse(&format!(
                r#"{{"schema_version": {SCHEMA_VERSION}, "qps": 4000.0, "requests": 1000,
                    "shed": 0, "latency_ms": {{"p50": 0.5, "p99": 1.0}},
                    "endpoints": {{"topk": {{"requests": {topk}}},
                                   "similar_items": {{"requests": {similar}}}}}}}"#
            ))
            .unwrap()
        };
        // A wholly different traffic mix is reported, never gated.
        let report = diff(
            &with_endpoints(1000.0, 0.0),
            &with_endpoints(0.0, 1000.0),
            &tol,
        )
        .unwrap();
        assert!(!report.regressed(), "{}", report.render());
        let row = report
            .checks
            .iter()
            .find(|c| c.metric == "endpoints.topk")
            .expect("endpoint row present");
        assert!(row.informational());
        // Endpoints absent from either side (pre-v6 fixtures) skip rows.
        let bare = summary(4000.0, 0.5, 1.0, 0.0);
        let report = diff(&bare, &with_endpoints(1000.0, 0.0), &tol).unwrap();
        assert!(!report
            .checks
            .iter()
            .any(|c| c.metric.starts_with("endpoints")));
    }

    #[test]
    fn schema_mismatch_is_an_error_not_a_regression() {
        let good = summary(4000.0, 0.5, 1.0, 0.0);
        let old = Value::parse(
            r#"{"schema_version": 1, "qps": 4000.0, "requests": 1000,
                "shed": 0, "latency_ms": {"p50": 0.5, "p99": 1.0}}"#,
        )
        .unwrap();
        assert!(diff(&old, &good, &DiffTolerances::default()).is_err());
        let missing = Value::parse(r#"{"qps": 1.0}"#).unwrap();
        assert!(diff(&good, &missing, &DiffTolerances::default()).is_err());
    }

    #[test]
    fn committed_reference_diffs_clean_against_itself() {
        // The acceptance criterion's "exit zero against the committed
        // BENCH_serve.json", without re-running the bench: the committed
        // file must parse, carry the current schema, and self-diff clean.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_serve.json");
        let v = Value::parse(&text).expect("reference parses");
        assert_eq!(
            v.get("schema_version").and_then(|s| s.as_f64()),
            Some(SCHEMA_VERSION),
            "committed reference must carry the current schema_version"
        );
        let report = diff(&v, &v, &DiffTolerances::default()).unwrap();
        assert!(!report.regressed(), "{}", report.render());
    }
}
