//! Single-thread scoring-kernel microbenchmark, shared by the
//! `kernel_bench` binary and the `kernels` block of `serve_bench --json`.
//!
//! Times the register-blocked microkernels of [`cumf_numeric::kernel`]
//! against the scalar sequential-reduction dot they replaced, on one
//! synthetic catalog scan per kernel: `users` user vectors each scored
//! against all `n_items` rows of an `n_items × f` factor matrix. Every
//! kernel does the same nominal work — one `f`-long inner product per
//! user×item pair — so `items_per_sec` (scored rows per second, summed
//! over users) compares directly across kernels and precisions, and the
//! two headline ratios fall out of it:
//!
//! * [`KernelReport::fp32_speedup`] — the tiled FP32 kernel over the
//!   scalar baseline; the cost of the determinism contract is paid back
//!   here or not at all.
//! * [`KernelReport::fp16_over_fp32`] — fused-decode FP16 over tiled
//!   FP32 on the *same* run; above 1.0 the half-width copy is faster,
//!   not just smaller.
//!
//! GB/s is **effective** bandwidth in the same sense as
//! `AdmissionReport::effective_gbps`: nominal factor bytes per scored
//! row (`f × width`) over wall time. The tiled kernels read each Θ row
//! once per [`kernel::TILE_USERS`] users, so their effective GB/s can
//! legitimately exceed DRAM bandwidth — register reuse is the point.
//! GFLOP/s uses the nominal `2·f` per scored row throughout.
//!
//! The default [`KernelBenchConfig::reference`] shape is sized so the
//! FP32 matrix cannot live in any plausible last-level cache
//! (768 Ki items × f=100 ≈ 307 MB), because the FP16-beats-FP32 claim is
//! a *memory* claim: on a cache-resident working set both precisions run
//! from SRAM and the decode cost dominates. Quick mode shrinks the
//! catalog for CI smoke runs and makes no throughput promises.

use cumf_numeric::dense;
use cumf_numeric::f16::F16;
use cumf_numeric::kernel;
use cumf_numeric::stats::XorShift64;
use serde::Value;
use std::time::Instant;

/// Shape and effort of one microbenchmark run.
#[derive(Clone, Copy, Debug)]
pub struct KernelBenchConfig {
    /// Factor dimension (the paper's reference point is 100).
    pub f: usize,
    /// Catalog rows scanned per user.
    pub n_items: usize,
    /// User vectors scored per pass (every kernel scores all of them).
    pub users: usize,
    /// Timed repetitions per kernel; the fastest is reported.
    pub reps: usize,
    /// Synthetic-data seed.
    pub seed: u64,
}

impl KernelBenchConfig {
    /// The committed-reference shape: f=100, 768 Ki items (~307 MB of
    /// FP32 factors — deliberately bigger than any last-level cache).
    pub fn reference() -> KernelBenchConfig {
        KernelBenchConfig {
            f: 100,
            n_items: 768 * 1024,
            users: 8,
            reps: 2,
            seed: 42,
        }
    }

    /// CI smoke shape: same kernels, a 32 Ki-item catalog that runs in
    /// well under a second. Shape-checking only — cache-resident, so the
    /// throughput ratios are not meaningful here.
    pub fn quick() -> KernelBenchConfig {
        KernelBenchConfig {
            f: 100,
            n_items: 32 * 1024,
            users: 8,
            reps: 2,
            seed: 42,
        }
    }

    /// Nominal FP32 factor bytes of the catalog this config scans.
    pub fn catalog_bytes(&self) -> u64 {
        (self.n_items * self.f * 4) as u64
    }
}

/// One timed kernel × precision point.
#[derive(Clone, Debug)]
pub struct KernelMeasurement {
    /// Kernel name (`scalar_dot`, `dot_lanes`, `score_tile`,
    /// `score_tile_f16`, `dot_i8_scaled`).
    pub kernel: &'static str,
    /// Factor precision the kernel streams (`fp32`, `fp16`, `int8`).
    pub precision: &'static str,
    /// Factor dimension of the run.
    pub f: usize,
    /// Seconds for the fastest full pass (all users × all items).
    pub secs: f64,
    /// Scored rows per second, summed over users.
    pub items_per_sec: f64,
    /// Effective bandwidth: nominal factor bytes per scored row over
    /// wall time (register reuse can push this past DRAM speed).
    pub gbps: f64,
    /// Nominal compute throughput: `2·f` FLOPs per scored row.
    pub gflops: f64,
}

impl KernelMeasurement {
    /// The measurement as a JSON object for `--json` summaries.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kernel".to_string(), Value::Str(self.kernel.to_string())),
            (
                "precision".to_string(),
                Value::Str(self.precision.to_string()),
            ),
            ("f".to_string(), Value::Num(self.f as f64)),
            ("secs".to_string(), Value::Num(self.secs)),
            ("items_per_sec".to_string(), Value::Num(self.items_per_sec)),
            ("gbps".to_string(), Value::Num(self.gbps)),
            ("gflops".to_string(), Value::Num(self.gflops)),
        ])
    }
}

/// The full microbenchmark result: one row per kernel, plus the config
/// that produced it.
#[derive(Clone, Debug)]
pub struct KernelReport {
    /// The shape that was run.
    pub config: KernelBenchConfig,
    /// One measurement per kernel, in fixed order (scalar baseline
    /// first).
    pub rows: Vec<KernelMeasurement>,
}

impl KernelReport {
    /// Throughput of a kernel by name (scored rows per second).
    fn items_per_sec(&self, kernel: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.kernel == kernel)
            .map(|r| r.items_per_sec)
    }

    /// Tiled-FP32 (`score_tile`) throughput over the scalar sequential
    /// dot — the headline "the contract still vectorizes" ratio.
    pub fn fp32_speedup(&self) -> f64 {
        match (
            self.items_per_sec("score_tile"),
            self.items_per_sec("scalar_dot"),
        ) {
            (Some(tiled), Some(scalar)) if scalar > 0.0 => tiled / scalar,
            _ => 0.0,
        }
    }

    /// Fused-decode FP16 (`score_tile_f16`) throughput over tiled FP32
    /// on the same run — above 1.0 the half-width copy is faster, not
    /// just smaller.
    pub fn fp16_over_fp32(&self) -> f64 {
        match (
            self.items_per_sec("score_tile_f16"),
            self.items_per_sec("score_tile"),
        ) {
            (Some(f16), Some(f32v)) if f32v > 0.0 => f16 / f32v,
            _ => 0.0,
        }
    }

    /// The report as the `kernels` JSON block shared by `kernel_bench
    /// --json` and `serve_bench --json`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("f".to_string(), Value::Num(self.config.f as f64)),
            ("items".to_string(), Value::Num(self.config.n_items as f64)),
            ("users".to_string(), Value::Num(self.config.users as f64)),
            ("reps".to_string(), Value::Num(self.config.reps as f64)),
            (
                "catalog_bytes".to_string(),
                Value::Num(self.config.catalog_bytes() as f64),
            ),
            (
                "rows".to_string(),
                Value::Array(self.rows.iter().map(|r| r.to_value()).collect()),
            ),
            ("fp32_speedup".to_string(), Value::Num(self.fp32_speedup())),
            (
                "fp16_over_fp32".to_string(),
                Value::Num(self.fp16_over_fp32()),
            ),
        ])
    }

    /// Human-readable table of the run.
    pub fn render(&self) -> String {
        let header = format!(
            "{:<16} {:>6} {:>5} {:>12} {:>9} {:>9}\n",
            "kernel", "prec", "f", "items/s", "GB/s", "GFLOP/s"
        );
        let mut out = header.clone();
        out.push_str(&crate::rule(header.len() - 1));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16} {:>6} {:>5} {:>12.3e} {:>9.2} {:>9.2}\n",
                r.kernel, r.precision, r.f, r.items_per_sec, r.gbps, r.gflops
            ));
        }
        out.push_str(&format!(
            "fp32 speedup (score_tile / scalar_dot): {:.2}x\n",
            self.fp32_speedup()
        ));
        out.push_str(&format!(
            "fp16 over fp32 (score_tile_f16 / score_tile): {:.2}x\n",
            self.fp16_over_fp32()
        ));
        out
    }
}

/// Items per Θ block in the tiled passes — mirrors the serving scorer's
/// blocked scan so the bench measures the same loop structure it ships.
const BLOCK_ITEMS: usize = 4096;

/// Time `body` (one full pass) `reps` times after one warm-up pass and
/// return the fastest wall time in seconds.
fn fastest(reps: usize, mut body: impl FnMut()) -> f64 {
    body(); // warm-up: faults pages, primes caches
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Run the microbenchmark: every kernel scans the same synthetic
/// catalog, scalar baseline first. Single-threaded by construction.
pub fn run_kernel_bench(cfg: &KernelBenchConfig) -> KernelReport {
    let f = cfg.f;
    let n = cfg.n_items;
    let mut rng = XorShift64::new(cfg.seed);
    let mut gen =
        |len: usize| -> Vec<f32> { (0..len).map(|_| (rng.next_f32() - 0.5) * 0.2).collect() };
    let theta = gen(n * f);
    let users = gen(cfg.users * f);
    let theta_f16: Vec<F16> = theta.iter().map(|&x| F16::from_f32(x)).collect();
    // Per-row symmetric int8 quantization, like `QuantizedFactors`.
    let mut theta_i8 = vec![0i8; n * f];
    let mut scales = vec![0.0f32; n];
    for v in 0..n {
        let row = &theta[v * f..(v + 1) * f];
        let max = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
        scales[v] = scale;
        for (dst, &x) in theta_i8[v * f..(v + 1) * f].iter_mut().zip(row) {
            *dst = (x / scale).round().clamp(-127.0, 127.0) as i8;
        }
    }

    let rows_per_pass = (cfg.users * n) as f64;
    let measure = |kernel: &'static str, precision: &'static str, width: usize, secs: f64| {
        KernelMeasurement {
            kernel,
            precision,
            f,
            secs,
            items_per_sec: rows_per_pass / secs,
            gbps: rows_per_pass * (f * width) as f64 / secs / 1e9,
            gflops: rows_per_pass * (2 * f) as f64 / secs / 1e9,
        }
    };

    let mut sink = vec![0.0f32; kernel::TILE_USERS * BLOCK_ITEMS];
    let mut rows = Vec::new();

    // Scalar baseline: the sequential-reduction dot the kernels replaced.
    let secs = fastest(cfg.reps, || {
        let mut acc = 0.0f32;
        for u in 0..cfg.users {
            let xu = &users[u * f..(u + 1) * f];
            for v in 0..n {
                acc += dense::dot(xu, &theta[v * f..(v + 1) * f]);
            }
        }
        std::hint::black_box(acc);
    });
    rows.push(measure("scalar_dot", "fp32", 4, secs));

    // Lane-blocked dot, one row pair at a time (the reference-path form).
    let secs = fastest(cfg.reps, || {
        let mut acc = 0.0f32;
        for u in 0..cfg.users {
            let xu = &users[u * f..(u + 1) * f];
            for v in 0..n {
                acc += kernel::dot_lanes(xu, &theta[v * f..(v + 1) * f]);
            }
        }
        std::hint::black_box(acc);
    });
    rows.push(measure("dot_lanes", "fp32", 4, secs));

    // Register-tiled FP32: TILE_USERS users share each Θ block, walked in
    // the scorer's block order.
    let secs = fastest(cfg.reps, || {
        let mut u0 = 0;
        while u0 < cfg.users {
            let cu = kernel::TILE_USERS.min(cfg.users - u0);
            let xs = &users[u0 * f..(u0 + cu) * f];
            let mut start = 0;
            while start < n {
                let len = BLOCK_ITEMS.min(n - start);
                kernel::score_tile(
                    xs,
                    cu,
                    &theta[start * f..(start + len) * f],
                    len,
                    f,
                    &mut sink,
                );
                start += len;
            }
            u0 += cu;
        }
        std::hint::black_box(sink[0]);
    });
    rows.push(measure("score_tile", "fp32", 4, secs));

    // Fused-decode FP16 tile: half the bytes, widen in registers.
    let secs = fastest(cfg.reps, || {
        let mut u0 = 0;
        while u0 < cfg.users {
            let cu = kernel::TILE_USERS.min(cfg.users - u0);
            let xs = &users[u0 * f..(u0 + cu) * f];
            let mut start = 0;
            while start < n {
                let len = BLOCK_ITEMS.min(n - start);
                kernel::score_tile_f16(
                    xs,
                    cu,
                    &theta_f16[start * f..(start + len) * f],
                    len,
                    f,
                    &mut sink,
                );
                start += len;
            }
            u0 += cu;
        }
        std::hint::black_box(sink[0]);
    });
    rows.push(measure("score_tile_f16", "fp16", 2, secs));

    // Fused-dequant int8 scan (the approximate path's stage-2 kernel).
    let secs = fastest(cfg.reps, || {
        let mut acc = 0.0f32;
        for u in 0..cfg.users {
            let xu = &users[u * f..(u + 1) * f];
            for v in 0..n {
                acc += kernel::dot_i8_scaled(xu, &theta_i8[v * f..(v + 1) * f], scales[v]);
            }
        }
        std::hint::black_box(acc);
    });
    rows.push(measure("dot_i8_scaled", "int8", 1, secs));

    KernelReport { config: *cfg, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_every_kernel_and_sane_ratios() {
        let mut cfg = KernelBenchConfig::quick();
        cfg.n_items = 512; // keep the unit test fast
        cfg.reps = 1;
        let report = run_kernel_bench(&cfg);
        let names: Vec<&str> = report.rows.iter().map(|r| r.kernel).collect();
        assert_eq!(
            names,
            [
                "scalar_dot",
                "dot_lanes",
                "score_tile",
                "score_tile_f16",
                "dot_i8_scaled"
            ]
        );
        for r in &report.rows {
            assert!(r.secs > 0.0 && r.items_per_sec > 0.0, "{}", r.kernel);
            assert!(r.gbps > 0.0 && r.gflops > 0.0, "{}", r.kernel);
        }
        assert!(report.fp32_speedup() > 0.0);
        assert!(report.fp16_over_fp32() > 0.0);
        let table = report.render();
        assert!(table.contains("score_tile_f16") && table.contains("fp32 speedup"));
    }

    #[test]
    fn json_block_carries_the_shape_ci_asserts() {
        let mut cfg = KernelBenchConfig::quick();
        cfg.n_items = 256;
        cfg.reps = 1;
        let v = run_kernel_bench(&cfg).to_value();
        assert_eq!(v.get("f").and_then(Value::as_f64), Some(100.0));
        assert_eq!(v.get("items").and_then(Value::as_f64), Some(256.0));
        let rows = v.get("rows").and_then(Value::as_array).expect("rows");
        assert_eq!(rows.len(), 5);
        for row in rows {
            for key in [
                "kernel",
                "precision",
                "f",
                "items_per_sec",
                "gbps",
                "gflops",
            ] {
                assert!(row.get(key).is_some(), "row missing {key}");
            }
        }
        assert!(v.get("fp32_speedup").and_then(Value::as_f64).unwrap() > 0.0);
        assert!(v.get("fp16_over_fp32").and_then(Value::as_f64).unwrap() > 0.0);
        // The block must round-trip through the shim parser (CI reads it
        // back with python's json, which is stricter still).
        let text = v.to_json();
        assert!(
            Value::parse(&text).is_ok(),
            "kernels block must be valid JSON"
        );
    }

    #[test]
    fn bytes_scale_with_precision_width() {
        let mut cfg = KernelBenchConfig::quick();
        cfg.n_items = 256;
        cfg.reps = 1;
        let report = run_kernel_bench(&cfg);
        // Same rows/sec convention: for equal times fp16 would stream half
        // the bytes; check the accounting (gbps/items_per_sec ∝ width·f).
        for r in &report.rows {
            let width = match r.precision {
                "fp32" => 4.0,
                "fp16" => 2.0,
                "int8" => 1.0,
                other => panic!("unknown precision {other}"),
            };
            let per_row = r.gbps * 1e9 / r.items_per_sec;
            assert!(
                (per_row - width * cfg.f as f64).abs() < 1e-6,
                "{}: {per_row} bytes/row",
                r.kernel
            );
        }
    }
}
