//! Table V: the taxonomy of parallel MF systems, with a smoke-run of every
//! cell this workspace implements (each system does two epochs on a tiny
//! instance and reports its per-epoch simulated time and reached RMSE).

use cumf_als::{AlsConfig, AlsTrainer, ImplicitAlsConfig, ImplicitAlsTrainer};
use cumf_baselines::bidmach::BidMach;
use cumf_baselines::ccd::{CcdConfig, CcdTrainer};
use cumf_baselines::sgd::SgdConfig;
use cumf_baselines::{GpuAlsBaseline, GpuSgd, LibMf, Nomad};
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_gpu_sim::host::CpuSpec;
use cumf_gpu_sim::GpuSpec;

fn main() {
    let args = HarnessArgs::parse();
    let sink = TelemetrySink::from_args(&args);
    let data = MfDataset::netflix(SizeClass::Tiny, args.seed);
    let f = 8usize;
    let epochs = 6u32;

    println!(
        "Table V — parallel MF solutions (implemented cells, smoke-run on tiny Netflix, f={f})"
    );
    println!(
        "{:<10} {:<28} {:<8} {:>12} {:>10}",
        "algorithm", "system (modeled)", "where", "s/epoch(sim)", "RMSE"
    );

    // SGD / CPU: LIBMF (blocking, single node).
    let libmf = LibMf {
        config: SgdConfig {
            f,
            grid: 8,
            ..SgdConfig::new(f, 0.05)
        },
        ..LibMf::paper_setup(f, &data.profile)
    };
    let r = libmf.train(&data, epochs);
    row(
        "SGD",
        "LIBMF (blocking, 40 thr)",
        "CPU",
        r.epoch_time,
        r.curve.best_rmse(),
    );

    // SGD / CPU distributed: NOMAD.
    let nomad = Nomad {
        config: SgdConfig {
            f,
            grid: 8,
            ..SgdConfig::new(f, 0.05)
        },
        ..Nomad::paper_setup(&data.profile, f)
    };
    let r = nomad.train(&data, epochs);
    row(
        "SGD",
        "NOMAD (async, 32 nodes)",
        "cluster",
        r.epoch_time,
        r.curve.best_rmse(),
    );

    // SGD / GPU: cuMF_SGD.
    let mut sgd = GpuSgd::paper_setup(GpuSpec::maxwell_titan_x(), 1, f, &data.profile);
    sgd.config = SgdConfig::new(f, 0.05);
    let r = sgd.train(&data, epochs * 2);
    row(
        "SGD",
        "GPU-SGD (Hogwild, half)",
        "GPU",
        r.epoch_time,
        r.curve.best_rmse(),
    );

    // ALS / GPU: BIDMach generic kernels (per-epoch time only; §V-C notes
    // it does not converge to the acceptance level under the protocol).
    let bid = BidMach {
        spec: GpuSpec::maxwell_titan_x(),
        f: 100,
        lambda: 0.05,
    };
    row(
        "ALS",
        "BIDMach (generic kernels)",
        "GPU",
        bid.epoch_time(&data),
        None,
    );

    // ALS / GPU: GPU-ALS (HPDC'16).
    let r = GpuAlsBaseline {
        spec: GpuSpec::maxwell_titan_x(),
        gpus: 1,
    }
    .train_with_f(&data, epochs, f);
    row(
        "ALS",
        "GPU-ALS (coal + LU)",
        "GPU",
        r.epoch_time,
        r.curve.best_rmse(),
    );

    // ALS / GPU: cuMF_ALS.
    let mut cfg = AlsConfig::for_profile(&data.profile);
    cfg.f = f;
    cfg.iterations = epochs as usize;
    cfg.rmse_target = None;
    let mut t =
        AlsTrainer::with_recorder(&data, cfg, GpuSpec::maxwell_titan_x(), 1, sink.recorder());
    let rep = t.train();
    row(
        "ALS",
        "cuMF_ALS (this work)",
        "GPU",
        rep.total_sim_time() / rep.epochs.len().max(1) as f64,
        Some(rep.final_rmse()),
    );

    // ALS / GPU implicit.
    let mut icfg = ImplicitAlsConfig {
        f,
        iterations: 2,
        ..ImplicitAlsConfig::default()
    };
    icfg.alpha = 10.0;
    let it = ImplicitAlsTrainer::new(&data, icfg, GpuSpec::maxwell_titan_x());
    row(
        "ALS",
        "cuMF_ALS implicit (HKV)",
        "GPU",
        it.epoch_sim_time(),
        None,
    );

    // CCD / CPU: CCD++.
    let mut ccd = CcdTrainer::new(
        &data,
        CcdConfig {
            f,
            lambda: 0.05,
            inner: 1,
            seed: args.seed,
        },
        CpuSpec::power8(),
    );
    let curve = ccd.train(epochs);
    row(
        "CCD",
        "CCD++ (cyclic, multicore)",
        "CPU",
        ccd.epoch_time(),
        curve.best_rmse(),
    );

    println!();
    println!("unimplemented-but-catalogued (documentation rows of Table V): HogWild!,");
    println!("FactorBird, Petuum, DSGD, DSGD++, dcMF, MLGF-MF, PALS, DALS, SparkALS,");
    println!("GraphLab, Sparkler, Facebook rotation, HPC-ALS, approximate ALS [29],");
    println!("parallel CCD++ on GPU [20].");
    sink.finish().expect("writing telemetry output");
}

fn row(alg: &str, system: &str, place: &str, epoch_s: f64, rmse: Option<f64>) {
    let rmse_s = rmse
        .map(|r| format!("{r:.3}"))
        .unwrap_or_else(|| "-".into());
    println!(
        "{:<10} {:<28} {:<8} {:>12} {:>10}",
        alg,
        system,
        place,
        fmt_s(epoch_s),
        rmse_s
    );
}
