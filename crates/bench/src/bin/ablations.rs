//! Ablation benches for the design choices DESIGN.md calls out — beyond the
//! paper's headline figures:
//!
//! * `fs` sweep: CG truncation depth vs. final RMSE and solve time (finds
//!   the paper's "fs = 6 is the smallest that does not hurt convergence");
//! * tile-size sweep: register demand → occupancy → load time;
//! * BIN sweep: shared-memory staging batch vs. occupancy;
//! * FP16 ε: solution perturbation of reduced-precision storage.

use cumf_als::als::{price_side, Side};
use cumf_als::kernels::hermitian::{hermitian_phases, HermitianShape, HermitianWorkload};
use cumf_als::{AlsConfig, AlsTrainer, Precision, SolverKind};
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::memory::LoadPattern;
use cumf_gpu_sim::GpuSpec;

fn main() {
    let args = HarnessArgs::parse();
    let sink = TelemetrySink::from_args(&args);
    let spec = GpuSpec::maxwell_titan_x();
    let data = MfDataset::netflix(args.size(), args.seed);
    let epochs = args.epochs(8) as usize;

    // --- fs sweep -------------------------------------------------------
    println!("Ablation 1 — CG truncation depth fs (Netflix, f=100, {epochs} epochs)");
    println!(
        "{:<6} {:>10} {:>14} {:>12}",
        "fs", "final RMSE", "solve s/epoch", "mean iters"
    );
    let mut exact_rmse = None;
    for fs in [1usize, 2, 4, 6, 10, 100] {
        let mut cfg = AlsConfig::for_profile(&data.profile);
        cfg.solver = if fs == 100 {
            SolverKind::BatchCholesky
        } else {
            SolverKind::Cg {
                fs,
                tolerance: 1e-4,
                precision: Precision::Fp32,
            }
        };
        cfg.iterations = epochs;
        cfg.rmse_target = None;
        let mut t = AlsTrainer::new(&data, cfg.clone(), spec.clone(), 1);
        let rep = t.train();
        let mean_iters =
            rep.epochs.iter().map(|e| e.mean_cg_iters).sum::<f64>() / rep.epochs.len() as f64;
        let solve = price_side(&data.profile, &cfg, Side::X, &spec, 1, mean_iters).solve
            + price_side(&data.profile, &cfg, Side::Theta, &spec, 1, mean_iters).solve;
        let label = if fs == 100 {
            "exact".to_string()
        } else {
            fs.to_string()
        };
        println!(
            "{:<6} {:>10.4} {:>14} {:>12.2}",
            label,
            rep.final_rmse(),
            fmt_s(solve),
            mean_iters
        );
        if fs == 100 {
            exact_rmse = Some(rep.final_rmse());
        }
    }
    if let Some(er) = exact_rmse {
        println!("(fs=6 final RMSE should sit within ~0.5% of exact {er:.4})");
    }

    // --- tile sweep -----------------------------------------------------
    println!();
    println!("Ablation 2 — register tile T vs occupancy and load time (f=100, nonCoal-L1)");
    println!(
        "{:<6} {:>14} {:>12} {:>10}",
        "T", "regs/thread", "blocks/SM", "load s"
    );
    let w = HermitianWorkload {
        rows: data.profile.m,
        feature_rows: data.profile.n,
        nz: data.profile.nz,
    };
    for tile in [4usize, 5, 10, 20, 25] {
        let shape = HermitianShape {
            f: 100,
            bin: 32,
            tile,
        };
        let res = shape.resources();
        if res.regs_per_thread * res.threads_per_block > 65_536 {
            println!(
                "{:<6} {:>14} {:>12} {:>10}",
                tile, res.regs_per_thread, "-", "(won't launch)"
            );
            continue;
        }
        let ph = hermitian_phases(&spec, &w, &shape, LoadPattern::NonCoalescedL1);
        println!(
            "{:<6} {:>14} {:>12} {:>10}",
            tile,
            res.regs_per_thread,
            ph.occupancy.blocks_per_sm,
            fmt_s(ph.load.time)
        );
    }

    // --- BIN sweep ------------------------------------------------------
    println!();
    println!("Ablation 3 — staging batch BIN vs shared memory and occupancy (f=100, T=10)");
    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "BIN", "smem/block", "blocks/SM", "load s"
    );
    for bin in [8usize, 16, 32, 64, 128] {
        let shape = HermitianShape {
            f: 100,
            bin,
            tile: 10,
        };
        let res = shape.resources();
        if res.shared_mem_per_block > spec.shared_mem_per_sm {
            println!(
                "{:<6} {:>12} {:>12} {:>10}",
                bin, res.shared_mem_per_block, "-", "(won't launch)"
            );
            continue;
        }
        let ph = hermitian_phases(&spec, &w, &shape, LoadPattern::NonCoalescedL1);
        println!(
            "{:<6} {:>12} {:>12} {:>10}",
            bin,
            res.shared_mem_per_block,
            ph.occupancy.blocks_per_sm,
            fmt_s(ph.load.time)
        );
    }

    // --- FP16 perturbation ----------------------------------------------
    println!();
    println!("Ablation 4 — FP16 storage perturbation (CG fs=6, {epochs} epochs)");
    for precision in [Precision::Fp32, Precision::Fp16] {
        let mut cfg = AlsConfig::for_profile(&data.profile);
        cfg.solver = SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision,
        };
        cfg.iterations = epochs;
        cfg.rmse_target = None;
        // The FP16/FP32 pair is the most telemetry-interesting ablation:
        // record it so SolverRecords carry the round-trip error stats.
        let mut t = AlsTrainer::with_recorder(&data, cfg, spec.clone(), 1, sink.recorder());
        let rep = t.train();
        println!("  {:?}: final RMSE {:.5}", precision, rep.final_rmse());
    }

    sink.finish().expect("writing telemetry output");
}
