//! Figure 4: coalesced vs. non-coalesced global→shared load in
//! `get_hermitian`, Netflix, Maxwell Titan X, f = 100.
//!
//! Prints the three phase bars (load / compute / write) for update-X and
//! update-Θ under `nonCoal-L1`, `nonCoal-noL1` and `coal`, in seconds per
//! update sweep — the same bars the paper plots. Also replays a sampled
//! slice of the real staging access stream through the trace-driven cache
//! model to validate the closed-form load estimates.

use cumf_als::kernels::hermitian::{hermitian_phases, HermitianShape, HermitianWorkload};
use cumf_als::{AlsConfig, AlsTrainer};
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_datasets::{DatasetProfile, MfDataset};
use cumf_gpu_sim::cache::{maxwell_l1, maxwell_l2, Access};
use cumf_gpu_sim::memory::LoadPattern;
use cumf_gpu_sim::GpuSpec;

fn main() {
    let args = HarnessArgs::parse();
    let spec = GpuSpec::maxwell_titan_x();
    let profile = DatasetProfile::netflix();
    let shape = HermitianShape::paper(100);
    let patterns = [
        LoadPattern::NonCoalescedL1,
        LoadPattern::NonCoalescedNoL1,
        LoadPattern::Coalesced,
    ];

    println!("Figure 4 — get_hermitian load scheme comparison");
    println!(
        "dataset: Netflix ({} x {}, {} nz), f=100, BIN=32, device: {}",
        profile.m, profile.n, profile.nz, spec.name
    );
    println!();

    for (side, rows, feat) in [
        ("update X", profile.m, profile.n),
        ("update Θ", profile.n, profile.m),
    ] {
        let w = HermitianWorkload {
            rows,
            feature_rows: feat,
            nz: profile.nz,
        };
        println!("{side}");
        println!(
            "{:<14} {:>8} {:>9} {:>8} {:>8}",
            "scheme", "load", "compute", "write", "total"
        );
        for p in patterns {
            let ph = hermitian_phases(&spec, &w, &shape, p);
            println!(
                "{:<14} {:>8} {:>9} {:>8} {:>8}",
                p.to_string(),
                fmt_s(ph.load.time),
                fmt_s(ph.compute_time),
                fmt_s(ph.write_time),
                fmt_s(ph.total())
            );
        }
        println!();
    }

    // Trace-driven validation: replay the staging stream of a sample of
    // thread blocks through the L1/L2 models, non-coalesced pattern.
    let sample_blocks = if args.quick { 200 } else { 2000 };
    let f = 100u64;
    let mut l1 = maxwell_l1();
    let mut l2 = maxwell_l2();
    let mut rng = cumf_numeric::stats::XorShift64::new(args.seed);
    let mean_degree = (profile.nz / profile.m).max(1);
    let mut reads = 0u64;
    for _ in 0..sample_blocks {
        // One block stages `mean_degree` feature columns, each f floats.
        for _ in 0..mean_degree {
            let col = rng.next_below(profile.n as usize) as u64;
            let base = col * f * 4;
            for e in 0..f {
                let addr = base + e * 4;
                reads += 1;
                if l1.access(addr) == Access::Miss {
                    l2.access(addr / 128 * 128);
                }
            }
        }
    }
    println!("trace validation (nonCoal-L1, {sample_blocks} sampled blocks, {reads} loads):");
    println!(
        "  L1 hit ratio: {:.3}  (closed form assumes per-thread line reuse ≈ {:.3})",
        l1.hit_ratio(),
        31.0 / 32.0
    );
    println!("  L2 hit ratio on L1 misses: {:.3}", l2.hit_ratio());
    println!(
        "  modeled DRAM fraction of requested bytes: {:.3}",
        cumf_gpu_sim::memory::staged_dram_bytes(
            &spec,
            &cumf_gpu_sim::memory::StagedLoad {
                total_bytes: profile.nz * f * 4,
                unique_bytes: profile.n * f * 4
            }
        ) / (profile.nz * f * 4) as f64
    );

    // Telemetry: run an instrumented training epoch or two so the trace
    // carries real get_hermitian.{load,compute,write} / get_bias / solve
    // kernel events under each pattern's cost profile.
    let sink = TelemetrySink::from_args(&args);
    if sink.enabled() {
        let data = MfDataset::netflix(args.size(), args.seed);
        let mut cfg = AlsConfig::for_profile(&data.profile);
        cfg.iterations = args.epochs(2) as usize;
        cfg.rmse_target = None;
        let mut trainer = AlsTrainer::with_recorder(&data, cfg, spec.clone(), 1, sink.recorder());
        trainer.train();
        sink.finish().expect("writing telemetry output");
    }
}
