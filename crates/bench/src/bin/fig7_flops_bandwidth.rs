//! Figure 7: (a) FLOPS and FLOPS-efficiency of `get_hermitian` vs. cuBLAS
//! `gemmBatched` across Kepler/Maxwell/Pascal; (b) CG-solver memory
//! bandwidth vs. `cudaMemcpy` bandwidth.
//!
//! Following the paper's fair-comparison protocol, `get_hermitian` is
//! measured with all rows set to the same length (the dataset's mean
//! degree) so the cuBLAS fixed-size batch does the same arithmetic.

use cumf_als::kernels::hermitian::{hermitian_phases, HermitianShape, HermitianWorkload};
use cumf_als::kernels::solve::solve_cost;
use cumf_als::{Precision, SolverKind};
use cumf_baselines::gemm_batched::GemmBatch;
use cumf_bench::HarnessArgs;
use cumf_datasets::DatasetProfile;
use cumf_gpu_sim::kernel::launch_time;
use cumf_gpu_sim::memory::LoadPattern;
use cumf_gpu_sim::occupancy::{occupancy, KernelResources};
use cumf_gpu_sim::GpuSpec;

fn main() {
    let _args = HarnessArgs::parse();
    let profile = DatasetProfile::netflix();
    let f = 100usize;
    let k = (profile.nz / profile.m) as usize; // fixed per-row size

    println!("Figure 7(a) — get_hermitian FLOPS vs cuBLAS gemmBatched (Netflix, f=100, fixed row size {k})");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10}",
        "device", "cuMF TFLOPS", "cuBLAS TFLOPS", "cuMF eff", "cuBLAS eff"
    );
    for spec in GpuSpec::paper_catalog() {
        // cuMF: hermitian over m rows of k entries each.
        let w = HermitianWorkload {
            rows: profile.m,
            feature_rows: profile.n,
            nz: profile.m * k as u64,
        };
        let shape = HermitianShape::paper(f);
        let ph = hermitian_phases(&spec, &w, &shape, LoadPattern::NonCoalescedL1);
        // Credit the arithmetic the kernel actually performs: 2·Nz·f(f+1)/2
        // FMA-flops over the lower triangle (symmetry halves the work a
        // full gemm would do for the same Gram matrix).
        let flops = 2.0 * w.nz as f64 * cumf_numeric::sym::packed_len(f) as f64;
        let cumf = flops / ph.total();

        // cuBLAS gemmBatched at the same fixed dimensions.
        let g = GemmBatch { k, f };
        let (_t, cublas) = g.timing(&spec, profile.m);

        println!(
            "{:<10} {:>12.2} {:>12.2} {:>10.2} {:>10.2}",
            spec.name.split(' ').next_back().unwrap_or(spec.name),
            cumf / 1e12,
            cublas / 1e12,
            cumf / spec.peak_fp32_flops,
            cublas / spec.peak_fp32_flops,
        );
        assert!(cumf > cublas, "cuMF must beat cuBLAS on {}", spec.name);
    }

    println!();
    println!("Figure 7(b) — CG solver memory bandwidth vs cudaMemcpy");
    println!(
        "{:<10} {:>14} {:>14} {:>10}",
        "device", "CG GB/s", "memcpy GB/s", "CG util"
    );
    for spec in GpuSpec::paper_catalog() {
        let solver = SolverKind::Cg {
            fs: 6,
            tolerance: 1e-4,
            precision: Precision::Fp32,
        };
        let cost = solve_cost(&spec, &solver, profile.m, f as u64, 6.0, false);
        let occ = occupancy(
            &spec,
            &KernelResources {
                regs_per_thread: 40,
                threads_per_block: 128,
                shared_mem_per_block: 0,
            },
        );
        let t = launch_time(&spec, &occ, &cost);
        let bw = t.achieved_bandwidth(cost.l2_wire_bytes + cost.dram_write_bytes);
        let memcpy = spec.memcpy_effective_bandwidth();
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>10.2}",
            spec.name.split(' ').next_back().unwrap_or(spec.name),
            bw / 1e9,
            memcpy / 1e9,
            bw / spec.dram_bandwidth,
        );
        assert!(bw > memcpy, "CG must beat memcpy on {}", spec.name);
    }
}
