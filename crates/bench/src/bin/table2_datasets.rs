//! Table II: benchmark datasets and parameters — the full-scale profiles
//! plus the statistics of the synthetic replicas actually trained on.

use cumf_bench::HarnessArgs;
use cumf_datasets::DatasetProfile;

fn main() {
    let args = HarnessArgs::parse();

    println!("Table II — benchmark datasets and parameters (paper scale)");
    println!(
        "{:<12} {:>12} {:>10} {:>8} {:>5} {:>7} {:>7}",
        "Dataset", "m", "n", "Nz", "f", "lambda", "RMSE"
    );
    for p in DatasetProfile::table2() {
        println!(
            "{:<12} {:>12} {:>10} {:>8} {:>5} {:>7} {:>7}",
            p.name,
            p.m,
            p.n,
            human(p.nz),
            p.f,
            p.lambda,
            p.rmse_target
        );
    }

    println!();
    println!("synthetic replicas at this run's size ({:?}):", args.size());
    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>10} {:>12} {:>12}",
        "Dataset", "m", "n", "train nz", "test nz", "mean value", "row degree"
    );
    for data in args.datasets() {
        let mean = data.train_coo.mean_value();
        println!(
            "{:<12} {:>8} {:>8} {:>10} {:>10} {:>12.2} {:>12.1}",
            data.profile.name,
            data.m(),
            data.n(),
            data.train_nnz(),
            data.test.nnz(),
            mean,
            data.train_nnz() as f64 / data.m() as f64,
        );
    }
    println!();
    println!("(profiles drive the simulated-time cost models; replicas drive convergence)");
}

fn human(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.1}B", n as f64 / 1e9)
    } else {
        format!("{:.0}M", n as f64 / 1e6)
    }
}
