//! §V-F: implicit matrix factorization — cuMF_ALS vs. the `implicit`
//! library vs. QMF, per-iteration time and convergence of the one-class
//! objective.
//!
//! Paper's measured per-iteration times: cuMF_ALS 2.2 s, implicit 90 s,
//! QMF 360 s.

use cumf_als::{ImplicitAlsConfig, ImplicitAlsTrainer};
use cumf_baselines::implicit_cpu::{CpuImplicitAls, ImplicitLibrary};
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::host::CpuSpec;
use cumf_gpu_sim::GpuSpec;

fn main() {
    let args = HarnessArgs::parse();
    let sink = TelemetrySink::from_args(&args);
    let data = MfDataset::netflix(args.size(), args.seed);
    let sweeps = args.epochs(8);

    // cuMF_ALS implicit: functional + priced.
    let config = ImplicitAlsConfig {
        iterations: sweeps as usize,
        ..ImplicitAlsConfig::default()
    };
    let mut trainer = ImplicitAlsTrainer::new(&data, config, GpuSpec::maxwell_titan_x());
    trainer.set_recorder(sink.recorder());
    let reports = trainer.train();

    println!("Implicit MF (§V-F) — Netflix as one-class input, f=100, alpha=40");
    println!();
    println!("one-class objective per sweep (must decrease):");
    for r in &reports {
        println!(
            "  sweep {:>2}: objective {:>14.1}  sim time {:>7}s",
            r.epoch,
            r.objective,
            fmt_s(r.sim_time)
        );
    }
    let monotone = reports
        .windows(2)
        .all(|w| w[1].objective <= w[0].objective * 1.001);
    println!("  monotone: {monotone}");

    let cumf_iter = reports
        .last()
        .map(|r| r.sim_time / r.epoch as f64)
        .unwrap_or(0.0);
    let implicit_iter = CpuImplicitAls {
        library: ImplicitLibrary::Implicit,
        cpu: CpuSpec::power8(),
        f: 100,
    }
    .iteration_time(&data);
    let qmf_iter = CpuImplicitAls {
        library: ImplicitLibrary::Qmf,
        cpu: CpuSpec::power8(),
        f: 100,
    }
    .iteration_time(&data);

    println!();
    println!("per-iteration time (simulated seconds; paper: 2.2 / 90 / 360):");
    println!("  {:<10} {:>8}", "cuMFALS", fmt_s(cumf_iter));
    println!("  {:<10} {:>8}", "implicit", fmt_s(implicit_iter));
    println!("  {:<10} {:>8}", "QMF", fmt_s(qmf_iter));
    println!();
    println!(
        "  implicit/cuMFALS = {:.1}x (paper 40.9x)",
        implicit_iter / cumf_iter
    );
    println!(
        "  QMF/implicit     = {:.1}x (paper 4.0x)",
        qmf_iter / implicit_iter
    );
    assert!(cumf_iter < implicit_iter && implicit_iter < qmf_iter);
    sink.finish().expect("writing telemetry output");
}
