//! Figure 5: solver time of 10 ALS iterations on Netflix, Maxwell,
//! f = 100, fs = 6 — LU-FP32 vs CG-FP32 vs CG-FP16, with and without L1,
//! against the get_hermitian time.
//!
//! The functional CG-iteration count that feeds the cost model is measured
//! by actually training on the synthetic Netflix replica.

use cumf_als::als::{price_epoch, price_side, Side};
use cumf_als::{AlsConfig, AlsTrainer, Precision, SolverKind};
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_datasets::MfDataset;
use cumf_gpu_sim::GpuSpec;

fn main() {
    let args = HarnessArgs::parse();
    let sink = TelemetrySink::from_args(&args);
    let spec = GpuSpec::maxwell_titan_x();
    let data = MfDataset::netflix(args.size(), args.seed);
    let iters = 10u32;

    // Measure the real mean CG iteration count over a training run. The
    // telemetry recorder (if requested) observes this run, so the JSONL
    // stream carries its per-sweep SolverRecords.
    let mut cfg = AlsConfig::for_profile(&data.profile);
    cfg.solver = SolverKind::Cg {
        fs: 6,
        tolerance: 1e-4,
        precision: Precision::Fp32,
    };
    cfg.iterations = args.epochs(iters) as usize;
    cfg.rmse_target = None;
    let mut trainer =
        AlsTrainer::with_recorder(&data, cfg.clone(), spec.clone(), 1, sink.recorder());
    let report = trainer.train();
    let mean_cg: f64 =
        report.epochs.iter().map(|e| e.mean_cg_iters).sum::<f64>() / report.epochs.len() as f64;

    println!(
        "Figure 5 — solver time for {iters} ALS iterations (Netflix, {}, f=100, fs=6)",
        spec.name
    );
    println!("measured mean CG iterations per row: {mean_cg:.2}");
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>15}",
        "solver", "solve-noL1", "solve-L1", "get_hermitian"
    );

    let solvers: [(&str, SolverKind); 3] = [
        ("LU-FP32", SolverKind::BatchLu),
        (
            "CG-FP32",
            SolverKind::Cg {
                fs: 6,
                tolerance: 1e-4,
                precision: Precision::Fp32,
            },
        ),
        (
            "CG-FP16",
            SolverKind::Cg {
                fs: 6,
                tolerance: 1e-4,
                precision: Precision::Fp16,
            },
        ),
    ];

    let herm_cfg = AlsConfig {
        solver: SolverKind::cumf_default(),
        ..cfg.clone()
    };
    let herm_epoch = {
        let p = price_epoch(&data.profile, &herm_cfg, &spec, 1, mean_cg);
        (p.load + p.compute + p.write) * iters as f64
    };

    let mut rows = Vec::new();
    for (name, solver) in solvers {
        let c = AlsConfig {
            solver,
            ..cfg.clone()
        };
        // The solve phase is L1-insensitive (Figure 5's observation): price
        // both flags and show they agree.
        let px = price_side(&data.profile, &c, Side::X, &spec, 1, mean_cg);
        let pt = price_side(&data.profile, &c, Side::Theta, &spec, 1, mean_cg);
        let solve_10 = (px.solve + pt.solve) * iters as f64;
        println!(
            "{:<10} {:>12} {:>12} {:>15}",
            name,
            fmt_s(solve_10),
            fmt_s(solve_10),
            fmt_s(herm_epoch)
        );
        rows.push((name, solve_10));
    }

    println!();
    let lu = rows[0].1;
    let cg32 = rows[1].1;
    let cg16 = rows[2].1;
    println!("ratios: CG-FP32/LU-FP32 = {:.2} (paper ≈ 0.25)", cg32 / lu);
    println!("        CG-FP16/CG-FP32 = {:.2} (paper ≈ 0.5)", cg16 / cg32);
    println!(
        "        LU-FP32/get_hermitian = {:.2} (paper ≈ 2)",
        lu / herm_epoch
    );

    if sink.enabled() {
        // Also record a CG-FP16 run so the stream carries solve_cg_fp16
        // SolverRecords (residual trajectories + FP16 round-trip error) —
        // enough to regenerate this figure's CG rows from the JSONL alone.
        let cfg16 = AlsConfig {
            solver: SolverKind::Cg {
                fs: 6,
                tolerance: 1e-4,
                precision: Precision::Fp16,
            },
            ..cfg.clone()
        };
        AlsTrainer::with_recorder(&data, cfg16, spec.clone(), 1, sink.recorder()).train();
        sink.finish().expect("writing telemetry output");
    }
}
