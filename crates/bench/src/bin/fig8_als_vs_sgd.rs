//! Figure 8: ALS vs. SGD on GPUs — RMSE vs. time on one GPU for all three
//! datasets, plus the four-GPU comparison on Hugewiki.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_baselines::GpuSgd;
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_gpu_sim::GpuSpec;

fn main() {
    let args = HarnessArgs::parse();
    let sink = TelemetrySink::from_args(&args);
    let datasets = args.datasets();
    let als_epochs = args.epochs(20);
    let sgd_epochs = args.epochs(60);
    let spec = GpuSpec::maxwell_titan_x;

    for data in &datasets {
        let name = data.profile.name;
        eprintln!("[fig8] {name}");
        let gpu_counts: &[u32] = if name == "Hugewiki" { &[1, 4] } else { &[1] };
        println!();
        println!("Figure 8 — {name}");

        for &g in gpu_counts {
            // ALS.
            let config = AlsConfig {
                iterations: als_epochs as usize,
                ..AlsConfig::for_profile(&data.profile)
            };
            let mut trainer = AlsTrainer::with_recorder(data, config, spec(), g, sink.recorder());
            let als = trainer.train();
            println!("# als@{g}");
            print!("{}", als.curve.to_tsv());

            // SGD.
            let sgd = GpuSgd::paper_setup(spec(), g, 100, &data.profile).train_with_recorder(
                data,
                sgd_epochs,
                sink.recorder(),
            );
            println!("# sgd@{g}");
            print!("{}", sgd.curve.to_tsv());

            let als_t = als
                .time_to_target
                .map(fmt_s)
                .unwrap_or_else(|| "n/a".into());
            let sgd_t = sgd
                .time_to_target
                .map(fmt_s)
                .unwrap_or_else(|| "n/a".into());
            println!("# time-to-target @{g} GPU(s): als={als_t}s sgd={sgd_t}s");
        }
    }

    println!();
    println!("(Paper's reading: SGD wins slightly per-GPU on the larger/denser sets,");
    println!(" ALS wins with 4 GPUs on Hugewiki and extends to implicit inputs.)");
    sink.finish().expect("writing telemetry output");
}
