//! Table I: measured compute/memory complexity per epoch, ALS vs. SGD.
//!
//! The paper's table is analytic; this harness *measures* the operation
//! counters the kernel cost models accumulate over one epoch and divides
//! out the predicted scaling factors, so a reader can check the constants
//! really are O(Nz·f²) / O(Nz·f + (m+n)·f²) / etc.

use cumf_als::kernels::bias::bias_cost;
use cumf_als::kernels::hermitian::{hermitian_cost, HermitianShape, HermitianWorkload};
use cumf_als::kernels::solve::solve_cost;
use cumf_als::SolverKind;
use cumf_bench::HarnessArgs;
use cumf_datasets::DatasetProfile;
use cumf_gpu_sim::kernel::KernelCost;
use cumf_gpu_sim::memory::LoadPattern;
use cumf_gpu_sim::GpuSpec;

fn main() {
    let _args = HarnessArgs::parse();
    let spec = GpuSpec::maxwell_titan_x();
    let p = DatasetProfile::netflix();
    let f = p.f as u64;
    let shape = HermitianShape::paper(f as usize);

    // get_hermitian (+bias) over both sides.
    let mut herm = KernelCost::default();
    for (rows, feats) in [(p.m, p.n), (p.n, p.m)] {
        let w = HermitianWorkload {
            rows,
            feature_rows: feats,
            nz: p.nz,
        };
        herm.accumulate(&hermitian_cost(
            &spec,
            &w,
            &shape,
            LoadPattern::NonCoalescedL1,
        ));
        herm.accumulate(&bias_cost(&spec, rows, p.nz, f));
    }

    // solve over both sides, exact (the Table-I row uses the direct solver).
    let mut solve = KernelCost::default();
    solve.accumulate(&solve_cost(
        &spec,
        &SolverKind::BatchLu,
        p.m + p.n,
        f,
        f as f64,
        false,
    ));

    // SGD epoch counters.
    let sgd = KernelCost {
        flops_fp32: p.nz as f64 * 8.0 * f as f64,
        dram_read_bytes: p.nz as f64 * (2.0 * f as f64 * 4.0 + 12.0),
        dram_write_bytes: p.nz as f64 * 2.0 * f as f64 * 4.0,
        mlp: 32.0,
        pipe_efficiency: 0.5,
        ..Default::default()
    };

    println!("Table I — measured compute (C) and memory (M) per epoch, Netflix f=100");
    println!(
        "{:<18} {:>12} {:>12} {:>8} {:>22}",
        "kernel", "C (GFLOP)", "M (GB)", "C/M", "normalized constant"
    );
    let rows = [
        (
            "ALS get_hermitian",
            &herm,
            herm.flops_fp32 / (2.0 * p.nz as f64 * (f * f) as f64),
            "C / (2·Nz·f²)",
        ),
        (
            "ALS solve",
            &solve,
            solve.flops_fp32 / (((p.m + p.n) * f * f * f) as f64),
            "C / ((m+n)·f³)",
        ),
        (
            "SGD",
            &sgd,
            sgd.flops_fp32 / ((p.nz * f) as f64),
            "C / (Nz·f)",
        ),
    ];
    for (name, c, norm, norm_label) in rows {
        println!(
            "{:<18} {:>12.1} {:>12.1} {:>8.1} {:>14.3} {}",
            name,
            c.total_flops() / 1e9,
            c.total_dram_bytes() / 1e9,
            c.arithmetic_intensity(),
            norm,
            norm_label,
        );
    }
    println!();
    println!("paper's claim: ALS C/M ratio ≈ f (per float) — compute-intensive;");
    println!("SGD C/M ≈ 1 — memory-intensive. Measured per-float ratios:");
    println!(
        "  get_hermitian: {:.1} (f = {f})",
        herm.arithmetic_intensity() * 4.0
    );
    println!("  SGD:           {:.1}", sgd.arithmetic_intensity() * 4.0);
    assert!(herm.arithmetic_intensity() * 4.0 > 20.0 * sgd.arithmetic_intensity() * 4.0);
}
