//! Scoring-microkernel benchmark: time the register-blocked kernels of
//! `cumf_numeric::kernel` against the scalar dot they replaced, on a
//! single thread, and report items/s, effective GB/s and GFLOP/s per
//! kernel × precision.
//!
//! ```text
//! cargo run --release -p cumf-bench --bin kernel_bench -- \
//!     --items 786432 --users 8 --reps 3 --json /tmp/kernels.json
//! ```
//!
//! Extra flags on top of the common set: `--f N` (factor dimension,
//! default 100), `--items N` (catalog rows), `--users N` (user vectors
//! per pass), `--reps N` (timed repetitions, fastest wins), `--json
//! PATH` (write the same `kernels` block `serve_bench --json` embeds).
//! `--quick` switches to a small cache-resident catalog for CI smoke
//! runs — the JSON shape is identical but the throughput ratios are not
//! meaningful there.

use cumf_bench::kernels::{run_kernel_bench, KernelBenchConfig};
use cumf_bench::HarnessArgs;

struct KernelFlags {
    f: Option<usize>,
    items: Option<usize>,
    users: Option<usize>,
    reps: Option<usize>,
    json: Option<String>,
}

fn parse_flags() -> (HarnessArgs, KernelFlags) {
    let (args, extras) = HarnessArgs::parse_with_extras();
    let mut flags = KernelFlags {
        f: None,
        items: None,
        users: None,
        reps: None,
        json: None,
    };
    let mut it = extras.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--f" => flags.f = it.next().and_then(|s| s.parse().ok()),
            "--items" => flags.items = it.next().and_then(|s| s.parse().ok()),
            "--users" => flags.users = it.next().and_then(|s| s.parse().ok()),
            "--reps" => flags.reps = it.next().and_then(|s| s.parse().ok()),
            "--json" => flags.json = it.next(),
            "--help" | "-h" => {
                eprintln!(
                    "kernel_bench flags: --f N, --items N, --users N, --reps N, \
                     --json PATH; common: {}",
                    HarnessArgs::common_usage()
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    (args, flags)
}

fn main() {
    let (args, flags) = parse_flags();
    let mut cfg = if args.quick {
        KernelBenchConfig::quick()
    } else {
        KernelBenchConfig::reference()
    };
    cfg.seed = args.seed;
    if let Some(f) = flags.f {
        cfg.f = f.max(1);
    }
    if let Some(items) = flags.items {
        cfg.n_items = items.max(1);
    }
    if let Some(users) = flags.users {
        cfg.users = users.max(1);
    }
    if let Some(reps) = flags.reps {
        cfg.reps = reps.max(1);
    }

    println!(
        "kernel_bench: f={} items={} ({} of fp32 factors) users={} reps={}{}",
        cfg.f,
        cfg.n_items,
        cumf_telemetry::footprint::human_bytes(cfg.catalog_bytes()),
        cfg.users,
        cfg.reps,
        if args.quick {
            " [quick: cache-resident, ratios not meaningful]"
        } else {
            ""
        }
    );
    let report = run_kernel_bench(&cfg);
    print!("{}", report.render());

    if let Some(path) = &flags.json {
        let json = report.to_value();
        match std::fs::write(path, json.to_json()) {
            Ok(()) => eprintln!("wrote kernel summary to {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
