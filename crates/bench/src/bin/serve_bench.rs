//! Closed-loop serving benchmark: train once, then replay a Poisson
//! request stream against the `cumf-serve` engine and report latency
//! percentiles, throughput and cache effectiveness.
//!
//! The generator paces request *arrivals* at the target QPS (open-loop
//! arrivals), but dispatches them in micro-batches as the engine frees up
//! (closed-loop service), so queueing delay shows up in the latencies the
//! moment the engine can't keep up — exactly the saturation behavior a
//! capacity plan needs to see.
//!
//! ```text
//! cargo run --release -p cumf-bench --bin serve_bench -- \
//!     --quick --qps 2000 --requests 4000 --fp16 --metrics /tmp/serve.jsonl
//! ```
//!
//! Extra flags on top of the common set: `--qps F`, `--requests N`,
//! `--k N`, `--batch N` (micro-batch size), `--cache N` (entries),
//! `--cold-frac F` (fraction served as cold-start fold-ins), `--fp16`
//! (score from the FP16 factor copy), `--republish` (publish a new model
//! epoch halfway through, exercising snapshot swap + cache turnover).

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_bench::{fmt_s, rule, HarnessArgs, TelemetrySink};
use cumf_datasets::{MfDataset, RequestSampler, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_serve::{ModelSnapshot, Request, ScoreConfig, ServeConfig, ServeEngine, UserRef};
use cumf_telemetry::{CounterSample, LatencyHistogram};
use std::time::{Duration, Instant};

struct ServeFlags {
    qps: f64,
    requests: usize,
    k: usize,
    batch: usize,
    cache: usize,
    cold_frac: f64,
    fp16: bool,
    republish: bool,
}

fn parse_flags() -> (HarnessArgs, ServeFlags) {
    let (args, extras) = HarnessArgs::parse_with_extras();
    let mut flags = ServeFlags {
        qps: 2000.0,
        requests: if args.quick { 4000 } else { 20000 },
        k: 10,
        batch: 64,
        cache: 4096,
        cold_frac: 0.02,
        fp16: false,
        republish: false,
    };
    let mut it = extras.into_iter();
    while let Some(a) = it.next() {
        let mut val = |d: f64| it.next().and_then(|s| s.parse().ok()).unwrap_or(d);
        match a.as_str() {
            "--qps" => flags.qps = val(2000.0),
            "--requests" => flags.requests = val(20000.0) as usize,
            "--k" => flags.k = val(10.0) as usize,
            "--batch" => flags.batch = (val(64.0) as usize).max(1),
            "--cache" => flags.cache = val(4096.0) as usize,
            "--cold-frac" => flags.cold_frac = val(0.02),
            "--fp16" => flags.fp16 = true,
            "--republish" => flags.republish = true,
            "--help" | "-h" => {
                eprintln!(
                    "serve_bench flags: --qps F, --requests N, --k N, --batch N, \
                     --cache N, --cold-frac F, --fp16, --republish; common: {}",
                    HarnessArgs::common_usage()
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    (args, flags)
}

/// Popularity prior: a small log-count bonus, the usual cold-item floor.
fn popularity_prior(data: &MfDataset) -> Vec<f32> {
    (0..data.n())
        .map(|v| 0.01 * (1.0 + data.rt.row_nnz(v) as f32).ln())
        .collect()
}

fn main() {
    let (args, flags) = parse_flags();
    let sink = TelemetrySink::from_args(&args);
    let rec = sink.recorder();

    // ── Train the model this engine will serve ──────────────────────────
    let size = if args.quick {
        SizeClass::Tiny
    } else {
        SizeClass::Small
    };
    let data = MfDataset::netflix(size, args.seed);
    let cfg = AlsConfig {
        f: if args.quick { 16 } else { 48 },
        iterations: args.epochs(8) as usize,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    eprintln!(
        "training {}×{} ({} ratings), f={} …",
        data.m(),
        data.n(),
        data.train_nnz(),
        cfg.f
    );
    let mut trainer = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    trainer.train();

    let mut snapshot = ModelSnapshot::new(0, trainer.theta.clone(), popularity_prior(&data));
    if flags.fp16 {
        snapshot = snapshot.with_fp16();
    }
    let engine = ServeEngine::new(
        trainer.x.clone(),
        snapshot,
        ServeConfig {
            k: flags.k,
            cache_capacity: flags.cache,
            score: ScoreConfig {
                use_fp16: flags.fp16,
                ..ScoreConfig::default()
            },
            ..ServeConfig::default()
        },
    );

    // ── Synthesize the request stream ───────────────────────────────────
    let mut sampler = RequestSampler::from_dataset(&data, args.seed ^ 0xBEEF);
    let stream = sampler.sample(flags.requests, flags.qps);
    // Every cold_frac-th request is replayed as an unseen user carrying
    // the sampled user's training history (a realistic fold-in workload).
    let cold_every = if flags.cold_frac > 0.0 {
        (1.0 / flags.cold_frac).round() as usize
    } else {
        usize::MAX
    };

    eprintln!(
        "replaying {} requests at {} QPS (batch ≤ {}, cache {}, k {}, {}{})",
        flags.requests,
        flags.qps,
        flags.batch,
        flags.cache,
        flags.k,
        if flags.fp16 { "fp16" } else { "fp32" },
        if flags.republish { ", republish" } else { "" },
    );

    // ── Closed-loop replay ──────────────────────────────────────────────
    let mut hist = LatencyHistogram::new();
    let mut served = 0usize;
    let mut republished = false;
    let t0 = Instant::now();
    let mut next = 0usize;
    while next < stream.len() {
        // Mid-run publish: same factors, new epoch — snapshot swap under
        // load, every cache key rolls over.
        if flags.republish && !republished && next >= stream.len() / 2 {
            let snap = engine.store().snapshot();
            let mut fresh = ModelSnapshot::new(
                snap.epoch + 1,
                snap.item_factors().clone(),
                popularity_prior(&data),
            );
            if flags.fp16 {
                fresh = fresh.with_fp16();
            }
            engine.store().publish(fresh);
            republished = true;
        }

        // Wait for at least one arrival, then drain everything due into
        // one micro-batch (bounded by --batch).
        let now = t0.elapsed().as_secs_f64();
        let first_due = stream[next].arrival;
        if first_due > now {
            std::thread::sleep(Duration::from_secs_f64(first_due - now));
        }
        let now = t0.elapsed().as_secs_f64();
        let mut batch = Vec::with_capacity(flags.batch);
        let mut arrivals = Vec::with_capacity(flags.batch);
        while next < stream.len() && stream[next].arrival <= now && batch.len() < flags.batch {
            let req = &stream[next];
            let user = if cold_every != usize::MAX && next % cold_every == cold_every - 1 {
                UserRef::Cold(data.r.row_iter(req.user as usize).collect())
            } else {
                UserRef::Known(req.user)
            };
            batch.push(Request {
                id: next as u64,
                user,
            });
            arrivals.push(req.arrival);
            next += 1;
        }

        let out = engine.recommend_batch(&batch, rec);
        let done = t0.elapsed().as_secs_f64();
        for (resp, &arrival) in out.iter().zip(&arrivals) {
            debug_assert!(resp.items.len() <= flags.k);
            hist.record_secs(done - arrival);
        }
        served += out.len();
    }
    let span = t0.elapsed().as_secs_f64();

    // ── Report ──────────────────────────────────────────────────────────
    let (p50, p95, p99) = hist.percentiles();
    let qps = served as f64 / span;
    let cache = engine.cache_stats();
    let header = format!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "metric", "p50 ms", "p95 ms", "p99 ms", "mean ms", "max ms"
    );
    println!("{header}");
    println!("{}", rule(header.len()));
    println!(
        "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        "request latency",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3,
        hist.mean() * 1e3,
        hist.max() * 1e3
    );
    println!();
    println!(
        "served {served} requests in {} s wall — {:.0} QPS achieved (target {:.0})",
        fmt_s(span),
        qps,
        flags.qps
    );
    println!(
        "cache: {} hits / {} misses ({:.1}% hit ratio), {} / {} entries resident",
        cache.hits,
        cache.misses,
        cache.hit_ratio() * 100.0,
        cache.len,
        cache.capacity
    );
    println!(
        "model epoch served at exit: {} ({})",
        engine.store().epoch(),
        if flags.fp16 {
            "fp16 factor copy"
        } else {
            "fp32 factors"
        }
    );

    // Final aggregates into the JSONL stream alongside the engine's
    // per-batch counters.
    if rec.enabled() {
        let t = engine.now();
        for c in hist.to_counters("serve.latency", t) {
            rec.counter(c);
        }
        rec.counter(CounterSample::new("serve.qps", t, qps));
        rec.counter(CounterSample::new(
            "serve.cache_hit_ratio",
            t,
            cache.hit_ratio(),
        ));
    }
    sink.finish().expect("failed to write telemetry outputs");
}
