//! Serving benchmark: train once, then replay a Poisson request stream
//! through the `cumf-serve` admission queue and report latency
//! percentiles, throughput, shed rate and cache effectiveness.
//!
//! The generator paces request *arrivals* at the target QPS and submits
//! each into the engine's bounded admission queue; a worker thread drains
//! the queue into micro-batches that close on size or age. In the default
//! closed loop a full queue blocks the submitter (backpressure), so
//! queueing delay shows up in the latencies the moment the engine can't
//! keep up. With `--open-loop` the submitter never blocks: a full queue
//! *sheds* the request, and overload turns into a measured rejection rate
//! while the latency of admitted requests stays bounded.
//!
//! ```text
//! cargo run --release -p cumf-bench --bin serve_bench -- \
//!     --quick --qps 2000 --requests 4000 --shards 4 --fp16 \
//!     --models 2 --canary-fraction 0.1 \
//!     --json BENCH_serve.json --metrics /tmp/serve.jsonl
//! ```
//!
//! Extra flags on top of the common set: `--qps F`, `--requests N`,
//! `--k N`, `--batch N` (max micro-batch), `--batch-age-us N` (batch close
//! deadline), `--queue-depth N` (admission queue capacity), `--shards N`
//! (item-range shards), `--open-loop` (shed instead of blocking when the
//! queue is full), `--cache N` (entries), `--cold-frac F` (fraction served
//! as cold-start fold-ins), `--fp16` (score from the FP16 factor copy),
//! `--models N` (register N arms `m0…m{N-1}` in the model registry; 1
//! registers a single `default` model), `--canary-fraction F` (route that
//! fraction of traffic to the last arm as a canary candidate),
//! `--republish` (publish a new model epoch halfway through, via the
//! registry), `--mem-budget-mb F` (soft resident-memory budget; exceeding
//! it after a publish warns and counts, never evicts), `--retrieval
//! exact|approx` (two-stage centroid-probed retrieval instead of the full
//! exact scan; see `docs/APPROXIMATION.md`), `--n-probe N` (clusters
//! scanned per request), `--clusters N` (centroids built at publish
//! time), `--quant int8|none` (stage-2 scan precision; int8 rescores the
//! shortlist in FP32), `--items N` (synthesize an N-item catalog instead
//! of the Tiny/Small presets — pruning only pays on catalogs that dwarf
//! the probe), `--kernels` (run the single-thread scoring-microkernel
//! sweep at its reference shape and fold the `kernels` block into the
//! JSON summary — the standalone form is the `kernel_bench` binary),
//! `--endpoint topk|similar-items|similar-users|rank|explain` (which
//! [`Query`](cumf_serve::Query) shape the replay exercises; non-topk
//! endpoints skip the cold-start fold-ins), `--slate N` (candidate-slate
//! length per `--endpoint rank` request), `--data PATH` (train and serve
//! a MovieLens-format `user::item::rating` text file loaded through
//! `cumf_datasets::loader` instead of a synthetic replica),
//! `--write-data PATH` (materialize the ML-100k-shaped replica as a
//! MovieLens text file first, then load it back — the loader round-trip
//! EXPERIMENTS.md records),
//! `--json PATH` (write a machine-readable summary
//! carrying [`cumf_bench::diff::SCHEMA_VERSION`], gateable with
//! `bench_diff` — schema v3 adds the `memory` footprint tree and
//! `bandwidth` effective-GB/s blocks; v4 adds the `retrieval` block and,
//! under `--retrieval approx`, the measured `recall` block; v5 adds
//! `score_flops` + `effective_gflops` to the `bandwidth` block and, under
//! `--kernels`, the `kernels` microbenchmark block; v6 adds the
//! `endpoint` token and the per-endpoint `endpoints` block mirroring the
//! `serve_endpoint_*` metric family).
//!
//! Observability flags (the `serve::obs` stack is always on; these expose
//! it): `--prom-out PATH` writes the Prometheus text exposition at exit
//! (including the per-model `serve_model_*` series), `--slow-trace-us N`
//! sets the flight-recorder slow threshold, `--slow-trace PATH` dumps a
//! Chrome trace of the slowest exemplar requests, `--slo-target-us N`
//! sets the SLO latency target that the burn-rate windows and the
//! report's compliance line are computed from, `--obs-addr ADDR` binds
//! the zero-dependency HTTP exposition server ([`cumf_serve::ObsServer`])
//! on ADDR (e.g. `127.0.0.1:9090`; port 0 picks a free one — the bound
//! address is printed) for live `GET /metrics`, `/healthz`, `/readyz` and
//! `/debug/*` scrapes during the replay, and `--obs-linger-ms N` keeps
//! the server (and the process) up N ms after the replay finishes so an
//! external scraper can collect the final state — the CI smoke job curls
//! the endpoints inside that window.

use cumf_als::{AlsConfig, AlsTrainer};
use cumf_bench::diff::SCHEMA_VERSION;
use cumf_bench::kernels::{run_kernel_bench, KernelBenchConfig, KernelReport};
use cumf_bench::{fmt_s, rule, HarnessArgs, TelemetrySink};
use cumf_datasets::loader::{load_ratings_file, write_movielens};
use cumf_datasets::{DatasetProfile, MfDataset, RequestSampler, SizeClass};
use cumf_gpu_sim::GpuSpec;
use cumf_numeric::dense::DenseMatrix;
use cumf_serve::{
    admission_queue, overlap_at_k, top_k_batch_stats, AdmissionConfig, AdmissionReport, AnnParams,
    Completion, Endpoint, HttpConfig, ModelSnapshot, ObsConfig, ObsServer, QuantMode, Request,
    Retrieval, ScoreConfig, ServeConfig, ServeEngine, SloConfig, SubmitError,
};
use cumf_telemetry::footprint::human_bytes;
use cumf_telemetry::{CounterSample, LatencyHistogram};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

struct ServeFlags {
    qps: f64,
    requests: usize,
    k: usize,
    batch: usize,
    batch_age_us: u64,
    queue_depth: usize,
    shards: usize,
    open_loop: bool,
    cache: usize,
    cold_frac: f64,
    fp16: bool,
    models: usize,
    canary_fraction: f64,
    republish: bool,
    approx: bool,
    n_probe: usize,
    clusters: usize,
    quant_none: bool,
    items: Option<usize>,
    kernels: bool,
    endpoint: Endpoint,
    slate: usize,
    data: Option<String>,
    write_data: Option<String>,
    json: Option<String>,
    prom_out: Option<String>,
    slow_trace: Option<String>,
    slow_trace_us: u64,
    slo_target_us: u64,
    mem_budget_mb: Option<f64>,
    obs_addr: Option<String>,
    obs_linger_ms: u64,
}

impl ServeFlags {
    /// The retrieval mode the flags ask for.
    fn retrieval(&self) -> Retrieval {
        if self.approx {
            Retrieval::Approx {
                n_probe: self.n_probe,
                quant: if self.quant_none {
                    QuantMode::None
                } else {
                    QuantMode::Int8
                },
            }
        } else {
            Retrieval::Exact
        }
    }
}

fn parse_flags() -> (HarnessArgs, ServeFlags) {
    let (args, extras) = HarnessArgs::parse_with_extras();
    let mut flags = ServeFlags {
        qps: 2000.0,
        requests: if args.quick { 4000 } else { 20000 },
        k: 10,
        batch: 64,
        batch_age_us: 500,
        queue_depth: 256,
        shards: 1,
        open_loop: false,
        cache: 4096,
        cold_frac: 0.02,
        fp16: false,
        models: 1,
        canary_fraction: 0.0,
        republish: false,
        approx: false,
        n_probe: 16,
        clusters: 64,
        quant_none: false,
        items: None,
        kernels: false,
        endpoint: Endpoint::TopK,
        slate: 32,
        data: None,
        write_data: None,
        json: None,
        prom_out: None,
        slow_trace: None,
        slow_trace_us: 2_000,
        slo_target_us: 25_000,
        mem_budget_mb: None,
        obs_addr: None,
        obs_linger_ms: 0,
    };
    let mut it = extras.into_iter();
    while let Some(a) = it.next() {
        let mut val = |d: f64| it.next().and_then(|s| s.parse().ok()).unwrap_or(d);
        match a.as_str() {
            "--qps" => flags.qps = val(2000.0),
            "--requests" => flags.requests = val(20000.0) as usize,
            "--k" => flags.k = val(10.0) as usize,
            "--batch" => flags.batch = (val(64.0) as usize).max(1),
            "--batch-age-us" => flags.batch_age_us = val(500.0) as u64,
            "--queue-depth" => flags.queue_depth = (val(256.0) as usize).max(1),
            "--shards" => flags.shards = (val(1.0) as usize).max(1),
            "--open-loop" => flags.open_loop = true,
            "--cache" => flags.cache = val(4096.0) as usize,
            "--cold-frac" => flags.cold_frac = val(0.02),
            "--fp16" => flags.fp16 = true,
            "--models" => flags.models = (val(1.0) as usize).max(1),
            "--canary-fraction" => flags.canary_fraction = val(0.0).clamp(0.0, 1.0),
            "--republish" => flags.republish = true,
            "--retrieval" => {
                flags.approx = matches!(it.next().as_deref(), Some("approx"));
            }
            "--n-probe" => flags.n_probe = (val(16.0) as usize).max(1),
            "--clusters" => flags.clusters = (val(64.0) as usize).max(1),
            "--quant" => {
                flags.quant_none = matches!(it.next().as_deref(), Some("none"));
            }
            "--items" => flags.items = Some((val(2000.0) as usize).max(16)),
            "--kernels" => flags.kernels = true,
            "--endpoint" => {
                flags.endpoint = match it.next().as_deref() {
                    Some("topk") | None => Endpoint::TopK,
                    Some("similar-items") => Endpoint::SimilarItems,
                    Some("similar-users") => Endpoint::SimilarUsers,
                    Some("rank") => Endpoint::RankItems,
                    Some("explain") => Endpoint::Explain,
                    Some(other) => {
                        eprintln!("unknown --endpoint {other}, serving topk");
                        Endpoint::TopK
                    }
                };
            }
            "--slate" => flags.slate = (val(32.0) as usize).max(1),
            "--data" => flags.data = it.next(),
            "--write-data" => flags.write_data = it.next(),
            "--json" => flags.json = it.next(),
            "--prom-out" => flags.prom_out = it.next(),
            "--slow-trace" => flags.slow_trace = it.next(),
            "--slow-trace-us" => flags.slow_trace_us = (val(2000.0) as u64).max(1),
            "--slo-target-us" => flags.slo_target_us = (val(25000.0) as u64).max(1),
            "--mem-budget-mb" => flags.mem_budget_mb = Some(val(f64::INFINITY).max(0.0)),
            "--obs-addr" => flags.obs_addr = it.next(),
            "--obs-linger-ms" => flags.obs_linger_ms = val(0.0) as u64,
            "--help" | "-h" => {
                eprintln!(
                    "serve_bench flags: --qps F, --requests N, --k N, --batch N, \
                     --batch-age-us N, --queue-depth N, --shards N, --open-loop, \
                     --cache N, --cold-frac F, --fp16, --models N, --canary-fraction F, \
                     --republish, --retrieval exact|approx, --n-probe N, --clusters N, \
                     --quant int8|none, --items N, --kernels, \
                     --endpoint topk|similar-items|similar-users|rank|explain, --slate N, \
                     --data PATH, --write-data PATH, \
                     --json PATH, --prom-out PATH, --slow-trace PATH, \
                     --slow-trace-us N, --slo-target-us N, --mem-budget-mb F, \
                     --obs-addr ADDR, --obs-linger-ms N; common: {}",
                    HarnessArgs::common_usage()
                );
                std::process::exit(0);
            }
            other => eprintln!("ignoring unknown flag {other}"),
        }
    }
    (args, flags)
}

/// Deterministic pseudo-random candidate slate for request `i`:
/// Knuth-hash item picks over the catalog, reproducible across runs so
/// two benches rank identical slates. Duplicates are allowed — the
/// engine ranks them independently, matching real deduplication-free
/// ad/feed callers.
fn slate_for(i: usize, n_items: usize, len: usize) -> Vec<u32> {
    (0..len)
        .map(|j| {
            let h = (i as u64)
                .wrapping_mul(2_654_435_761)
                .wrapping_add(j as u64 * 97_003);
            (h % n_items as u64) as u32
        })
        .collect()
}

/// Popularity prior: a small log-count bonus, the usual cold-item floor.
fn popularity_prior(data: &MfDataset) -> Vec<f32> {
    (0..data.n())
        .map(|v| 0.01 * (1.0 + data.rt.row_nnz(v) as f32).ln())
        .collect()
}

/// Measured ranking quality of the approximate retrieval path against
/// the exact FP32 scan, over a sample of trained users, with the factor
/// bytes each path streamed for the same batch.
struct RecallSummary {
    k: usize,
    users: usize,
    recall: f64,
    exact_bytes: u64,
    approx_bytes: u64,
}

impl RecallSummary {
    /// How many times fewer factor bytes the approximate scan streamed.
    fn bytes_ratio(&self) -> f64 {
        self.exact_bytes as f64 / self.approx_bytes.max(1) as f64
    }
}

/// Score a sample of trained users through both the exact and the
/// approximate scorer on the engine's published snapshot (the registry
/// has already attached the centroid index and the int8 block copy), and
/// measure mean `overlap@k` plus scan bytes for each path.
///
/// Users are scored one request at a time — the latency-critical serving
/// regime, and what the admission replay actually produces (at
/// interactive QPS most scoring micro-batches hold a single cache-miss
/// user). Byte counts therefore reflect per-request streaming: the exact
/// path re-streams the whole Θ catalog per request, the approximate path
/// streams the centroid table plus only the probed clusters. Large
/// offline batches amortize the exact scan across a user chunk and favor
/// it instead — see `docs/APPROXIMATION.md` for that trade.
fn measure_recall(engine: &ServeEngine, x: &DenseMatrix, flags: &ServeFlags) -> RecallSummary {
    let id = engine.registry().default_model();
    let guard = engine
        .registry()
        .snapshot(&id)
        .expect("default arm is live");
    let snapshot = guard.full();
    let sample = x.rows().clamp(1, 256);
    let step = (x.rows() / sample).max(1);
    let exact_cfg = ScoreConfig::default();
    let approx_cfg = ScoreConfig {
        retrieval: flags.retrieval(),
        ..exact_cfg
    };
    let (mut users, mut recall) = (0usize, 0.0f64);
    let (mut exact_bytes, mut approx_bytes) = (0u64, 0u64);
    let mut u = 0usize;
    while u < x.rows() && users < sample {
        let one = DenseMatrix::from_vec(1, x.cols(), x.row(u).to_vec());
        let (exact, es) = top_k_batch_stats(snapshot, &one, flags.k, &exact_cfg);
        let (approx, aps) = top_k_batch_stats(snapshot, &one, flags.k, &approx_cfg);
        recall += overlap_at_k(&exact[0], &approx[0], flags.k);
        exact_bytes += es.bytes;
        approx_bytes += aps.bytes;
        users += 1;
        u += step;
    }
    RecallSummary {
        k: flags.k,
        users,
        recall: recall / users.max(1) as f64,
        exact_bytes,
        approx_bytes,
    }
}

/// Everything the replay measured, for the human report and the JSON dump.
struct ReplaySummary {
    served: usize,
    failed: usize,
    shed: usize,
    span: f64,
    latency: LatencyHistogram,
    admission: AdmissionReport,
    /// Completions per model arm, keyed by model id.
    per_model: BTreeMap<String, usize>,
}

fn main() {
    let (args, flags) = parse_flags();
    let sink = TelemetrySink::from_args(&args);
    let rec = sink.recorder();

    // ── Train the model this engine will serve ──────────────────────────
    // `--items N` swaps in a custom catalog size: approximate retrieval
    // only pays once the catalog dwarfs the per-request probe + rescore
    // overhead, which the Tiny/Small presets are too small to show.
    let size = match (flags.items, args.quick) {
        (Some(n), quick) => SizeClass::Custom {
            m: if quick { 600 } else { 3000 },
            n,
            nz: 12 * n,
        },
        (None, true) => SizeClass::Tiny,
        (None, false) => SizeClass::Small,
    };
    let data = if flags.data.is_some() || flags.write_data.is_some() {
        // Real-data path: serve a MovieLens-format ratings file through
        // the text loader. `--write-data` first materializes the
        // ML-100k-shaped replica as a `user::item::rating` file so the
        // loader is exercised end-to-end without a network fetch.
        if let Some(path) = &flags.write_data {
            let replica = MfDataset::movielens_100k(args.seed);
            let mut all = replica.train_coo.clone();
            for e in replica.test.entries() {
                all.push(e.row, e.col, e.value);
            }
            let file = std::fs::File::create(path).expect("create ratings file");
            write_movielens(&all, std::io::BufWriter::new(file)).expect("write ratings file");
            eprintln!("wrote {} MovieLens-format ratings to {path}", all.nnz());
        }
        let path = flags
            .data
            .as_deref()
            .or(flags.write_data.as_deref())
            .unwrap();
        let coo = load_ratings_file(path).expect("parse ratings file");
        eprintln!(
            "loaded {} ratings ({} users × {} items) from {path} via the text loader",
            coo.nnz(),
            coo.rows(),
            coo.cols()
        );
        MfDataset::from_ratings(DatasetProfile::movielens_100k(), &coo, 0.1, args.seed)
    } else {
        MfDataset::netflix(size, args.seed)
    };
    let cfg = AlsConfig {
        f: if args.quick { 16 } else { 48 },
        iterations: args.epochs(8) as usize,
        rmse_target: None,
        ..AlsConfig::for_profile(&data.profile)
    };
    eprintln!(
        "training {}×{} ({} ratings), f={} …",
        data.m(),
        data.n(),
        data.train_nnz(),
        cfg.f
    );
    let mut trainer = AlsTrainer::new(&data, cfg, GpuSpec::maxwell_titan_x(), 1);
    trainer.train();

    let obs_cfg = ObsConfig {
        slow_threshold: Duration::from_micros(flags.slow_trace_us),
        slo: SloConfig {
            target: Duration::from_micros(flags.slo_target_us),
            ..SloConfig::default()
        },
        ..ObsConfig::default()
    };
    let mut serve_cfg = ServeConfig::default()
        .with_k(flags.k)
        .with_shards(flags.shards)
        .with_cache_capacity(flags.cache)
        .with_score(ScoreConfig {
            use_fp16: flags.fp16,
            retrieval: flags.retrieval(),
            ..ScoreConfig::default()
        })
        .with_ann(AnnParams {
            k_clusters: flags.clusters,
            ..AnnParams::default()
        })
        .with_obs(obs_cfg);
    if let Some(mb) = flags.mem_budget_mb {
        serve_cfg = serve_cfg.with_memory_budget((mb * 1024.0 * 1024.0) as u64);
    }

    // One registry arm per --models: the same trained factors behind each
    // (distinct epoch tags so the arms are tellable apart downstream),
    // with the last arm as the canary candidate when a split is asked for.
    let arm_names: Vec<String> = if flags.models <= 1 {
        vec!["default".to_string()]
    } else {
        (0..flags.models).map(|i| format!("m{i}")).collect()
    };
    let mut builder = ServeEngine::builder().config(serve_cfg);
    for (i, name) in arm_names.iter().enumerate() {
        let mut snapshot =
            ModelSnapshot::new(i as u64, trainer.theta.clone(), popularity_prior(&data));
        if flags.fp16 {
            snapshot = snapshot.with_fp16();
        }
        builder = builder.model(name.as_str(), trainer.x.clone(), snapshot);
    }
    let canary_arm = (flags.canary_fraction > 0.0 && arm_names.len() > 1)
        .then(|| arm_names.last().unwrap().clone());
    if let Some(candidate) = &canary_arm {
        builder = builder.canary(candidate.as_str(), flags.canary_fraction);
    }
    let engine = Arc::new(
        builder
            .build()
            .expect("registry bootstrap from trained factors"),
    );

    // Bind the exposition server before the replay so live scrapes see
    // the stream mid-flight; port 0 picks a free port (printed below).
    let obs_server = flags.obs_addr.as_deref().map(|addr| {
        let server = ObsServer::bind(addr, Arc::clone(&engine), HttpConfig::default())
            .expect("bind observability listener");
        eprintln!("obs: serving /metrics on http://{}/", server.local_addr());
        server
    });

    // ── Measure recall of the approximate path (before the replay, so
    //    the engine's live counters stay untouched) ──────────────────────
    let recall = flags
        .approx
        .then(|| measure_recall(&engine, &trainer.x, &flags));
    if let Some(r) = &recall {
        eprintln!(
            "approx retrieval: recall@{} = {:.3} over {} users, {:.1}x fewer scan bytes",
            r.k,
            r.recall,
            r.users,
            r.bytes_ratio()
        );
    }

    // ── Synthesize the request stream ───────────────────────────────────
    let mut sampler = RequestSampler::from_dataset(&data, args.seed ^ 0xBEEF);
    let stream = sampler.sample(flags.requests, flags.qps);
    // Every cold_frac-th request is replayed as an unseen user carrying
    // the sampled user's training history (a realistic fold-in workload).
    let cold_every = if flags.cold_frac > 0.0 {
        (1.0 / flags.cold_frac).round() as usize
    } else {
        usize::MAX
    };

    eprintln!(
        "replaying {} {} requests at {} QPS ({} loop, batch ≤ {} or {} µs, queue {}, \
         {} shard{}, cache {}, k {}, {} model{}{}, {}{})",
        flags.requests,
        flags.endpoint.name(),
        flags.qps,
        if flags.open_loop { "open" } else { "closed" },
        flags.batch,
        flags.batch_age_us,
        flags.queue_depth,
        flags.shards,
        if flags.shards == 1 { "" } else { "s" },
        flags.cache,
        flags.k,
        arm_names.len(),
        if arm_names.len() == 1 { "" } else { "s" },
        canary_arm
            .as_ref()
            .map(|c| format!(" (canary {c} at {:.2})", flags.canary_fraction))
            .unwrap_or_default(),
        if flags.fp16 { "fp16" } else { "fp32" },
        if flags.republish { ", republish" } else { "" },
    );

    // ── Replay through the admission queue ──────────────────────────────
    // The worker drains the queue on its own thread while this thread
    // paces arrivals; latency for an admitted request is measured from its
    // *scheduled* arrival to batch completion, so both queueing delay and
    // closed-loop backpressure (a late submit) are charged to it.
    let (queue, worker, done) = admission_queue(AdmissionConfig {
        max_batch: flags.batch,
        queue_depth: flags.queue_depth,
        batch_age: Duration::from_micros(flags.batch_age_us),
    });
    // Shed requests must spend SLO budget, so the queue needs the obs hook.
    let queue = queue.with_obs(engine.obs_arc());
    let mut shed = 0usize;
    let replay0 = engine.now();
    let (admission, completions) = std::thread::scope(|scope| {
        let engine = &engine;
        let handle = scope.spawn(move || worker.run(engine, rec));
        let mut republished = false;
        for (i, sampled) in stream.iter().enumerate() {
            // Mid-run publish: same factors, new epoch into the default
            // arm — a keyed snapshot swap under load, every cache key for
            // that arm rolls over.
            if flags.republish && !republished && i >= stream.len() / 2 {
                let id = engine.registry().default_model();
                let snap = engine
                    .registry()
                    .snapshot(&id)
                    .expect("default arm is live");
                let mut fresh = ModelSnapshot::new(
                    snap.epoch() + 1,
                    snap.full().item_factors().clone(),
                    popularity_prior(&data),
                );
                if flags.fp16 {
                    fresh = fresh.with_fp16();
                }
                engine
                    .registry()
                    .publish(&id, fresh)
                    .expect("republish into the default arm");
                republished = true;
            }

            let due = replay0 + sampled.arrival;
            let now = engine.now();
            if due > now {
                std::thread::sleep(Duration::from_secs_f64(due - now));
            }
            let req = match flags.endpoint {
                Endpoint::TopK => {
                    if cold_every != usize::MAX && i % cold_every == cold_every - 1 {
                        Request::cold(i as u64, data.r.row_iter(sampled.user as usize).collect())
                    } else {
                        Request::known(i as u64, sampled.user)
                    }
                }
                Endpoint::SimilarItems => {
                    Request::similar_items(i as u64, sampled.user % data.n() as u32)
                }
                Endpoint::SimilarUsers => Request::similar_users(i as u64, sampled.user),
                Endpoint::RankItems => {
                    Request::rank_items(i as u64, sampled.user, slate_for(i, data.n(), flags.slate))
                }
                Endpoint::Explain => Request::explain(
                    i as u64,
                    sampled.user,
                    sampled.user.wrapping_mul(31).wrapping_add(i as u32) % data.n() as u32,
                ),
            };
            if flags.open_loop {
                match queue.try_submit(req, due) {
                    Ok(()) | Err(SubmitError::Full(_)) => {}
                    Err(SubmitError::Closed(_)) => panic!("admission worker died"),
                }
            } else {
                queue.submit(req, due).expect("admission worker died");
            }
        }
        shed = queue.rejected() as usize;
        drop(queue); // disconnect: the worker drains and returns
        let completions: Vec<Completion> = done.iter().collect();
        (handle.join().expect("worker panicked"), completions)
    });
    let span = engine.now() - replay0;

    let mut latency = LatencyHistogram::new();
    let mut per_model: BTreeMap<String, usize> = BTreeMap::new();
    let mut failed = 0usize;
    for c in &completions {
        match &c.response {
            Ok(r) => {
                debug_assert!(r.items.len() <= flags.k);
                *per_model.entry(r.model.as_str().to_string()).or_insert(0) += 1;
            }
            Err(_) => failed += 1,
        }
        latency.record_secs((c.finished_at - c.submitted_at).max(0.0));
    }
    let summary = ReplaySummary {
        served: completions.len() - failed,
        failed,
        shed,
        span,
        latency,
        admission,
        per_model,
    };
    // Optional single-thread microkernel sweep, after the replay so it
    // never competes with the admission worker for the core. Always the
    // reference shape: the fp16-vs-fp32 ratio is a memory claim and only
    // means something on a catalog too big for the last-level cache.
    let kernels = flags.kernels.then(|| {
        let cfg = KernelBenchConfig::reference();
        eprintln!(
            "microkernels: scanning {} items at f={} per kernel …",
            cfg.n_items, cfg.f
        );
        run_kernel_bench(&cfg)
    });

    // Refresh the serve_mem_bytes / serve_cache_* gauges from live state
    // so the report, the JSON summary, and --prom-out all agree.
    engine.refresh_memory_gauges();
    report(&engine, &flags, &summary, recall.as_ref(), kernels.as_ref());

    // Final aggregates into the JSONL stream alongside the engine's
    // per-batch counters.
    if rec.enabled() {
        let t = engine.now();
        for c in summary.latency.to_counters("serve.latency", t) {
            rec.counter(c);
        }
        rec.counter(CounterSample::new(
            "serve.qps",
            t,
            summary.served as f64 / summary.span,
        ));
        rec.counter(CounterSample::new(
            "serve.cache_hit_ratio",
            t,
            engine.cache_stats().hit_ratio(),
        ));
        summary.admission.emit(rec, t);
    }
    if let Some(path) = &flags.json {
        let json = json_summary(&engine, &flags, &summary, recall.as_ref(), kernels.as_ref());
        std::fs::write(path, json.to_json()).expect("failed to write JSON summary");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &flags.prom_out {
        let text = engine.obs().render_prometheus(engine.now());
        std::fs::write(path, text).expect("failed to write Prometheus exposition");
        eprintln!("wrote {path}");
    }
    if let Some(path) = &flags.slow_trace {
        let trace = engine.obs().flight().exemplar_trace();
        std::fs::write(path, trace).expect("failed to write slow-request trace");
        eprintln!("wrote {path}");
    }
    if let Some(server) = obs_server {
        if flags.obs_linger_ms > 0 {
            eprintln!(
                "obs: lingering {} ms on http://{}/ for scrapes …",
                flags.obs_linger_ms,
                server.local_addr()
            );
            std::thread::sleep(Duration::from_millis(flags.obs_linger_ms));
        }
        server.shutdown();
    }
    sink.finish().expect("failed to write telemetry outputs");
}

fn report(
    engine: &ServeEngine,
    flags: &ServeFlags,
    s: &ReplaySummary,
    recall: Option<&RecallSummary>,
    kernels: Option<&KernelReport>,
) {
    let (p50, p95, p99) = s.latency.percentiles();
    let qps = s.served as f64 / s.span;
    let cache = engine.cache_stats();
    let header = format!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "metric", "p50 ms", "p95 ms", "p99 ms", "mean ms", "max ms"
    );
    println!("{header}");
    println!("{}", rule(header.len()));
    println!(
        "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        "request latency",
        p50 * 1e3,
        p95 * 1e3,
        p99 * 1e3,
        s.latency.mean() * 1e3,
        s.latency.max() * 1e3
    );
    let (q50, q95, q99) = s.admission.queue_delay.percentiles();
    println!(
        "{:<26} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
        "queueing delay",
        q50 * 1e3,
        q95 * 1e3,
        q99 * 1e3,
        s.admission.queue_delay.mean() * 1e3,
        s.admission.queue_delay.max() * 1e3
    );
    println!();
    println!(
        "served {} requests in {} s wall — {:.0} QPS achieved (target {:.0}); {} shed, {} failed",
        s.served,
        fmt_s(s.span),
        qps,
        flags.qps,
        s.shed,
        s.failed
    );
    println!(
        "admission: {} batches (mean {:.1} req/batch; {} closed by size, {} by age)",
        s.admission.batches,
        s.admission.mean_batch(),
        s.admission.closed_by_size,
        s.admission.closed_by_age
    );
    println!(
        "cache: {} hits / {} misses ({:.1}% hit ratio), {} / {} entries resident",
        cache.hits,
        cache.misses,
        cache.hit_ratio() * 100.0,
        cache.len,
        cache.capacity
    );
    let m = engine.obs().metrics();
    let endpoints: Vec<String> = Endpoint::ALL
        .iter()
        .filter_map(|e| {
            let h = m.endpoint(*e);
            let n = h.requests.get();
            (n > 0).then(|| {
                let (_, _, p99) = h.latency.snapshot().percentiles();
                format!("{} {} (p99 {:.3} ms)", e.name(), n, p99 * 1e3)
            })
        })
        .collect();
    println!("endpoints: {}", endpoints.join(", "));
    let mem = engine.memory_report();
    let parts: Vec<String> = mem
        .children()
        .iter()
        .map(|c| format!("{} {}", c.name(), human_bytes(c.total_bytes())))
        .collect();
    println!(
        "memory: {} resident ({})",
        human_bytes(mem.total_bytes()),
        parts.join(", ")
    );
    println!(
        "bandwidth: {} streamed over {} s of score time — {:.2} GB/s, {:.2} GFLOP/s effective ({})",
        human_bytes(s.admission.scan_bytes),
        fmt_s(s.admission.score_secs),
        s.admission.effective_gbps(),
        s.admission.effective_gflops(),
        if flags.fp16 {
            "fp16 scans"
        } else {
            "fp32 scans"
        }
    );
    if let Some(k) = kernels {
        println!();
        print!("{}", k.render());
    }
    if let Some(r) = recall {
        let m = engine.obs().metrics();
        println!(
            "retrieval: approx (clusters {}, probe {}, {}) — recall@{} {:.3} over {} users; \
             {} scanned vs {} exact ({:.1}x reduction)",
            flags.clusters,
            flags.n_probe,
            if flags.quant_none {
                "fp32 candidates"
            } else {
                "int8 candidates + fp32 rescore"
            },
            r.k,
            r.recall,
            r.users,
            human_bytes(r.approx_bytes),
            human_bytes(r.exact_bytes),
            r.bytes_ratio()
        );
        println!(
            "retrieval counters: {} clusters probed, {} shortlist rows scanned, {} rescored",
            m.ann_probed.get(),
            m.ann_candidates.get(),
            m.ann_rescored.get()
        );
    }
    if s.per_model.len() > 1 {
        let total: usize = s.per_model.values().sum::<usize>().max(1);
        let arms: Vec<String> = s
            .per_model
            .iter()
            .map(|(m, n)| format!("{m} {} ({:.1}%)", n, *n as f64 / total as f64 * 100.0))
            .collect();
        let canary = engine
            .registry()
            .canary()
            .map(|p| format!(" — canary {} at {:.2}", p.candidate, p.fraction))
            .unwrap_or_default();
        println!("models: {}{}", arms.join(", "), canary);
    }
    if let Some(slo) = &s.admission.slo {
        let burns: Vec<String> = slo
            .burn_rates
            .iter()
            .map(|b| format!("{:.2}x/{:.0}s", b.burn, b.window_secs))
            .collect();
        println!(
            "SLO: target {:.1} ms, {:.1}% compliant ({} breached, {} shed of {}), \
             burn {} — {}",
            slo.target_secs * 1e3,
            slo.compliance * 100.0,
            slo.breached,
            slo.shed,
            slo.total,
            burns.join(", "),
            if slo.met() { "met" } else { "VIOLATED" }
        );
    }
    let default = engine.registry().default_model();
    let epoch = engine.registry().epoch(&default).unwrap_or(0);
    println!(
        "default model '{}' at epoch {} across {} shard{} ({})",
        default,
        epoch,
        engine.registry().n_shards(),
        if engine.registry().n_shards() == 1 {
            ""
        } else {
            "s"
        },
        if flags.fp16 {
            "fp16 factor copy"
        } else {
            "fp32 factors"
        }
    );
}

fn json_summary(
    engine: &ServeEngine,
    flags: &ServeFlags,
    s: &ReplaySummary,
    recall: Option<&RecallSummary>,
    kernels: Option<&KernelReport>,
) -> Value {
    let (p50, p95, p99) = s.latency.percentiles();
    let (q50, q95, q99) = s.admission.queue_delay.percentiles();
    let cache = engine.cache_stats();
    let mem = engine.memory_report();
    let obj = |pairs: Vec<(&str, Value)>| {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    };
    let slo = s.admission.slo.as_ref().map(|slo| {
        obj(vec![
            ("target_ms", Value::Num(slo.target_secs * 1e3)),
            ("error_budget", Value::Num(slo.error_budget)),
            ("compliance", Value::Num(slo.compliance)),
            ("breached", Value::Num(slo.breached as f64)),
            ("shed", Value::Num(slo.shed as f64)),
            ("met", Value::Bool(slo.met())),
        ])
    });
    let metrics = engine.obs().metrics();
    let endpoints = obj(Endpoint::ALL
        .iter()
        .map(|e| {
            let h = metrics.endpoint(*e);
            let snap = h.latency.snapshot();
            let (p50, p95, p99) = snap.percentiles();
            (
                e.name(),
                obj(vec![
                    ("requests", Value::Num(h.requests.get() as f64)),
                    ("p50_ms", Value::Num(p50 * 1e3)),
                    ("p95_ms", Value::Num(p95 * 1e3)),
                    ("p99_ms", Value::Num(p99 * 1e3)),
                    ("mean_ms", Value::Num(snap.mean() * 1e3)),
                ]),
            )
        })
        .collect());
    let models = Value::Array(
        engine
            .registry()
            .model_ids()
            .iter()
            .map(|id| {
                obj(vec![
                    ("name", Value::Str(id.as_str().to_string())),
                    (
                        "epoch",
                        Value::Num(engine.registry().epoch(id).unwrap_or(0) as f64),
                    ),
                    (
                        "served",
                        Value::Num(*s.per_model.get(id.as_str()).unwrap_or(&0) as f64),
                    ),
                ])
            })
            .collect(),
    );
    obj(vec![
        ("schema_version", Value::Num(SCHEMA_VERSION)),
        ("bench", Value::Str("serve_bench".to_string())),
        ("shards", Value::Num(engine.registry().n_shards() as f64)),
        ("requests", Value::Num(flags.requests as f64)),
        ("served", Value::Num(s.served as f64)),
        ("failed", Value::Num(s.failed as f64)),
        ("shed", Value::Num(s.shed as f64)),
        ("open_loop", Value::Bool(flags.open_loop)),
        ("target_qps", Value::Num(flags.qps)),
        ("qps", Value::Num(s.served as f64 / s.span)),
        ("wall_s", Value::Num(s.span)),
        ("models", models),
        ("canary_fraction", Value::Num(flags.canary_fraction)),
        ("endpoint", Value::Str(flags.endpoint.name().to_string())),
        ("endpoints", endpoints),
        (
            "latency_ms",
            obj(vec![
                ("p50", Value::Num(p50 * 1e3)),
                ("p95", Value::Num(p95 * 1e3)),
                ("p99", Value::Num(p99 * 1e3)),
                ("mean", Value::Num(s.latency.mean() * 1e3)),
                ("max", Value::Num(s.latency.max() * 1e3)),
            ]),
        ),
        (
            "queue_delay_ms",
            obj(vec![
                ("p50", Value::Num(q50 * 1e3)),
                ("p95", Value::Num(q95 * 1e3)),
                ("p99", Value::Num(q99 * 1e3)),
            ]),
        ),
        (
            "admission",
            obj(vec![
                ("batches", Value::Num(s.admission.batches as f64)),
                ("mean_batch", Value::Num(s.admission.mean_batch())),
                (
                    "closed_by_size",
                    Value::Num(s.admission.closed_by_size as f64),
                ),
                (
                    "closed_by_age",
                    Value::Num(s.admission.closed_by_age as f64),
                ),
                ("rejected", Value::Num(s.admission.rejected as f64)),
                ("queue_depth", Value::Num(flags.queue_depth as f64)),
                ("max_batch", Value::Num(flags.batch as f64)),
                ("batch_age_us", Value::Num(flags.batch_age_us as f64)),
            ]),
        ),
        (
            "cache",
            obj(vec![
                ("hit_ratio", Value::Num(cache.hit_ratio())),
                ("hits", Value::Num(cache.hits as f64)),
                ("misses", Value::Num(cache.misses as f64)),
            ]),
        ),
        (
            "memory",
            obj(vec![
                ("resident_bytes", Value::Num(mem.total_bytes() as f64)),
                ("tree", mem.to_value()),
            ]),
        ),
        (
            "bandwidth",
            obj(vec![
                ("scan_bytes", Value::Num(s.admission.scan_bytes as f64)),
                ("score_flops", Value::Num(s.admission.score_flops as f64)),
                ("score_secs", Value::Num(s.admission.score_secs)),
                ("effective_gbps", Value::Num(s.admission.effective_gbps())),
                (
                    "effective_gflops",
                    Value::Num(s.admission.effective_gflops()),
                ),
            ]),
        ),
        (
            "kernels",
            kernels.map(|k| k.to_value()).unwrap_or(Value::Null),
        ),
        (
            "retrieval",
            obj(vec![
                (
                    "mode",
                    Value::Str(if flags.approx { "approx" } else { "exact" }.to_string()),
                ),
                ("n_probe", Value::Num(flags.n_probe as f64)),
                ("clusters", Value::Num(flags.clusters as f64)),
                (
                    "quant",
                    Value::Str(if flags.quant_none { "none" } else { "int8" }.to_string()),
                ),
            ]),
        ),
        (
            "recall",
            recall
                .map(|r| {
                    obj(vec![
                        ("k", Value::Num(r.k as f64)),
                        ("users", Value::Num(r.users as f64)),
                        ("recall_at_k", Value::Num(r.recall)),
                        ("exact_scan_bytes", Value::Num(r.exact_bytes as f64)),
                        ("approx_scan_bytes", Value::Num(r.approx_bytes as f64)),
                        ("bytes_ratio", Value::Num(r.bytes_ratio())),
                    ])
                })
                .unwrap_or(Value::Null),
        ),
        ("fp16", Value::Bool(flags.fp16)),
        ("k", Value::Num(flags.k as f64)),
        ("slo", slo.unwrap_or(Value::Null)),
    ])
}
