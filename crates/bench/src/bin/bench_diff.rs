//! Regression gate over `serve_bench --json` summaries.
//!
//! Compares a freshly produced summary against the committed reference
//! (`BENCH_serve.json`) and fails when throughput, tail latency, or the
//! shed fraction regressed beyond tolerance. Intended for CI:
//!
//! ```text
//! serve_bench --quick --qps 4000 --requests 6000 --shards 8 --json fresh.json
//! bench_diff --reference BENCH_serve.json --current fresh.json
//! ```
//!
//! Exit codes: 0 = within tolerance, 1 = regression, 2 = usage or
//! schema error (missing file, unparsable JSON, schema_version skew).
//! `--warn-only` demotes exit 1 to 0 so noisy CI hosts can observe the
//! report without blocking merges.

use cumf_bench::diff::{diff, DiffTolerances};
use serde::Value;
use std::process::ExitCode;

const USAGE: &str = "\
bench_diff: compare serve_bench --json summaries against a committed reference

USAGE:
  bench_diff --reference PATH --current PATH [options]

OPTIONS:
  --reference PATH     committed baseline summary (e.g. BENCH_serve.json)
  --current PATH       freshly produced summary to gate
  --warn-only          print the report but exit 0 even on regression
  --tol-qps FRAC       max fractional qps drop        (default 0.35)
  --tol-p50 FRAC       max fractional p50 rise        (default 1.0)
  --tol-p99 FRAC       max fractional p99 rise        (default 1.5)
  --tol-shed FRAC      max absolute shed-fraction rise (default 0.05)
  -h, --help           show this help";

struct Flags {
    reference: String,
    current: String,
    warn_only: bool,
    tol: DiffTolerances,
}

fn parse_flags() -> Result<Flags, String> {
    let mut reference = None;
    let mut current = None;
    let mut warn_only = false;
    let mut tol = DiffTolerances::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |what: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "--reference" => reference = Some(val("--reference")?),
            "--current" => current = Some(val("--current")?),
            "--warn-only" => warn_only = true,
            "--tol-qps" => tol.qps_drop_frac = parse_frac(&val("--tol-qps")?)?,
            "--tol-p50" => tol.p50_rise_frac = parse_frac(&val("--tol-p50")?)?,
            "--tol-p99" => tol.p99_rise_frac = parse_frac(&val("--tol-p99")?)?,
            "--tol-shed" => tol.shed_rise_abs = parse_frac(&val("--tol-shed")?)?,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Flags {
        reference: reference.ok_or("--reference is required")?,
        current: current.ok_or("--current is required")?,
        warn_only,
        tol,
    })
}

fn parse_frac(s: &str) -> Result<f64, String> {
    let f: f64 = s.parse().map_err(|_| format!("`{s}` is not a number"))?;
    if f < 0.0 {
        return Err(format!("tolerance `{s}` must be non-negative"));
    }
    Ok(f)
}

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    Value::parse(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let flags = match parse_flags() {
        Ok(f) => f,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("bench_diff: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (reference, current) = match (load(&flags.reference), load(&flags.current)) {
        (Ok(r), Ok(c)) => (r, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match diff(&reference, &current, &flags.tol) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "bench_diff: {} vs {}\n{}",
        flags.reference,
        flags.current,
        report.render()
    );
    if report.regressed() {
        if flags.warn_only {
            println!("bench_diff: REGRESSED beyond tolerance (warn-only, not failing)");
            ExitCode::SUCCESS
        } else {
            println!("bench_diff: REGRESSED beyond tolerance");
            ExitCode::FAILURE
        }
    } else {
        println!("bench_diff: within tolerance");
        ExitCode::SUCCESS
    }
}
