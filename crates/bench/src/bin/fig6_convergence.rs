//! Figure 6 + Table IV: cuMF_ALS vs. CPU solutions — test RMSE vs. training
//! time, and seconds to reach the acceptable RMSE.
//!
//! Systems: LIBMF (40 threads), NOMAD (32/64 machines), GPU-ALS@Maxwell,
//! cuMFALS@Maxwell, cuMFALS@Pascal. cuMF_ALS uses one GPU for Netflix and
//! YahooMusic and four for Hugewiki, exactly as the paper runs it.
//!
//! The cuMF functional run happens once; the Pascal curve re-prices the same
//! epochs on the P100 model (the functional math is device-independent).

use cumf_als::als::price_epoch;
use cumf_als::{AlsConfig, AlsTrainer};
use cumf_baselines::{GpuAlsBaseline, LibMf, Nomad};
use cumf_bench::{fmt_s, HarnessArgs, TelemetrySink};
use cumf_gpu_sim::timeline::ConvergenceCurve;
use cumf_gpu_sim::GpuSpec;

struct Row {
    system: String,
    times: Vec<Option<f64>>,
}

fn main() {
    let args = HarnessArgs::parse();
    let sink = TelemetrySink::from_args(&args);
    let datasets = args.datasets();
    let als_epochs = args.epochs(20);
    let sgd_epochs = args.epochs(60);

    let mut rows: Vec<Row> = ["LIBMF", "NOMAD", "GPU-ALS@M", "cuMFALS@M", "cuMFALS@P"]
        .iter()
        .map(|s| Row {
            system: s.to_string(),
            times: Vec::new(),
        })
        .collect();
    let mut curves: Vec<(String, Vec<ConvergenceCurve>)> = Vec::new();

    for data in &datasets {
        let name = data.profile.name;
        let gpus = if name == "Hugewiki" { 4 } else { 1 };
        eprintln!(
            "[fig6] {name}: m={} n={} nz={}",
            data.m(),
            data.n(),
            data.train_nnz()
        );
        let mut ds_curves = Vec::new();

        // LIBMF.
        let libmf = LibMf::paper_setup(100, &data.profile).train(data, sgd_epochs);
        rows[0].times.push(libmf.time_to_target);
        ds_curves.push(libmf.curve);

        // NOMAD.
        let nomad = Nomad::paper_setup(&data.profile, 100).train(data, sgd_epochs);
        rows[1].times.push(nomad.time_to_target);
        ds_curves.push(nomad.curve);

        // GPU-ALS on Maxwell.
        let gpu_als = GpuAlsBaseline {
            spec: GpuSpec::maxwell_titan_x(),
            gpus,
        }
        .train(data, als_epochs);
        rows[2].times.push(gpu_als.time_to_target);
        ds_curves.push(gpu_als.curve);

        // cuMF_ALS on Maxwell (functional run), re-priced for Pascal.
        let config = AlsConfig {
            iterations: als_epochs as usize,
            ..AlsConfig::for_profile(&data.profile)
        };
        let mut trainer = AlsTrainer::with_recorder(
            data,
            config.clone(),
            GpuSpec::maxwell_titan_x(),
            gpus,
            sink.recorder(),
        );
        let cumf_m = trainer.train();
        rows[3].times.push(cumf_m.time_to_target);

        let mut curve_m = cumf_m.curve.clone();
        curve_m.label = "cuMFALS@M".into();

        let pascal = GpuSpec::pascal_p100();
        let mut curve_p = ConvergenceCurve::new("cuMFALS@P");
        let mut t_p = 0.0;
        let mut ttt_p = None;
        for e in &cumf_m.epochs {
            t_p += price_epoch(&data.profile, &config, &pascal, gpus, e.mean_cg_iters).total();
            curve_p.push(t_p, e.epoch, e.test_rmse);
            if ttt_p.is_none() && e.test_rmse <= data.profile.rmse_target {
                ttt_p = Some(t_p);
            }
        }
        rows[4].times.push(ttt_p);
        ds_curves.push(curve_m);
        ds_curves.push(curve_p);
        curves.push((name.to_string(), ds_curves));
    }

    // Table IV.
    println!();
    println!("Table IV — training time (simulated seconds) to acceptable RMSE");
    print!("{:<12}", "system");
    for d in &datasets {
        print!(" {:>12}", d.profile.name);
    }
    println!();
    for row in &rows {
        print!("{:<12}", row.system);
        for t in &row.times {
            match t {
                Some(v) => print!(" {:>12}", fmt_s(*v)),
                None => print!(" {:>12}", "n/a"),
            }
        }
        println!();
    }
    // Speedup row: cuMFALS@P vs LIBMF.
    print!("{:<12}", "@P/LIBMF");
    for i in 0..datasets.len() {
        match (rows[0].times[i], rows[4].times[i]) {
            (Some(l), Some(p)) if p > 0.0 => print!(" {:>11.1}x", l / p),
            _ => print!(" {:>12}", "n/a"),
        }
    }
    println!();

    // Figure 6 series.
    for (name, ds_curves) in &curves {
        println!();
        println!("Figure 6 — {name} (time\\tRMSE per system)");
        for c in ds_curves {
            println!("# {}", c.label);
            print!("{}", c.to_tsv());
        }
    }

    sink.finish().expect("writing telemetry output");
}
