//! Shared helpers for the experiment harnesses and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index) and prints the same rows/series the
//! paper reports, in plain text and TSV. Binaries accept `--quick` to run
//! on smaller synthetic instances for smoke-testing.

#![deny(missing_docs)]

use cumf_datasets::{MfDataset, SizeClass};

/// Parsed common CLI flags for harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Run on Tiny instances with fewer epochs (CI smoke mode).
    pub quick: bool,
    /// RNG seed.
    pub seed: u64,
}

impl HarnessArgs {
    /// Parse from `std::env::args`: `--quick` and `--seed N` are accepted.
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs { quick: false, seed: 42 };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42);
                }
                "--help" | "-h" => {
                    eprintln!("flags: --quick (tiny instances), --seed N");
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
        }
        args
    }

    /// The dataset size class this run uses.
    pub fn size(&self) -> SizeClass {
        if self.quick {
            SizeClass::Tiny
        } else {
            SizeClass::Default
        }
    }

    /// Epoch budget scaling for quick mode.
    pub fn epochs(&self, full: u32) -> u32 {
        if self.quick {
            full.min(5)
        } else {
            full
        }
    }

    /// The three benchmark datasets at this run's size.
    pub fn datasets(&self) -> Vec<MfDataset> {
        vec![
            MfDataset::netflix(self.size(), self.seed),
            MfDataset::yahoo_music(self.size(), self.seed),
            MfDataset::hugewiki(self.size(), self.seed),
        ]
    }
}

/// Format seconds compactly for table output.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 10.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.2}")
    }
}

/// Print a rule line matching a header's width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt_s(345.6), "346");
        assert_eq!(fmt_s(23.45), "23.4");
        assert_eq!(fmt_s(3.456), "3.46");
    }

    #[test]
    fn quick_mode_uses_tiny() {
        let a = HarnessArgs { quick: true, seed: 1 };
        assert_eq!(a.size(), SizeClass::Tiny);
        assert_eq!(a.epochs(30), 5);
        let b = HarnessArgs { quick: false, seed: 1 };
        assert_eq!(b.size(), SizeClass::Default);
        assert_eq!(b.epochs(30), 30);
    }
}
