//! Shared helpers for the experiment harnesses and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index) and prints the same rows/series the
//! paper reports, in plain text and TSV. Binaries accept `--quick` to run
//! on smaller synthetic instances for smoke-testing.

#![deny(missing_docs)]

pub mod diff;
pub mod kernels;

use cumf_datasets::{MfDataset, SizeClass};
use cumf_telemetry::{
    render_summary, summarize_events, write_chrome_trace, write_jsonl, MemoryRecorder, Recorder,
    NOOP,
};

/// Parsed common CLI flags for harness binaries.
#[derive(Clone, Debug)]
pub struct HarnessArgs {
    /// Run on Tiny instances with fewer epochs (CI smoke mode).
    pub quick: bool,
    /// RNG seed.
    pub seed: u64,
    /// Write a Chrome trace-event JSON file here (`--trace PATH`).
    pub trace: Option<String>,
    /// Write a JSONL metrics stream here (`--metrics PATH`).
    pub metrics: Option<String>,
    /// Print the nvprof-style per-kernel summary table (`--profile`).
    pub profile: bool,
}

impl HarnessArgs {
    /// Parse from `std::env::args`: `--quick`, `--seed N`, `--trace PATH`,
    /// `--metrics PATH` and `--profile` are accepted; anything else is
    /// warned about and dropped.
    pub fn parse() -> HarnessArgs {
        let (args, extras) = Self::parse_with_extras();
        for e in extras {
            if e == "--help" || e == "-h" {
                eprintln!("flags: {}", Self::common_usage());
                std::process::exit(0);
            }
            eprintln!("ignoring unknown flag {e}");
        }
        args
    }

    /// Like [`HarnessArgs::parse`], but hands unrecognized tokens back to
    /// the caller (in order) instead of warning — for binaries that layer
    /// their own flags on top of the common set.
    pub fn parse_with_extras() -> (HarnessArgs, Vec<String>) {
        Self::parse_from(std::env::args().skip(1))
    }

    /// The testable core of argument parsing: consumes an explicit token
    /// stream (no `--help` handling, which only makes sense on a real
    /// command line — `--help` lands in the extras).
    pub fn parse_from(tokens: impl IntoIterator<Item = String>) -> (HarnessArgs, Vec<String>) {
        let mut args = HarnessArgs {
            quick: false,
            seed: 42,
            trace: None,
            metrics: None,
            profile: false,
        };
        let mut extras = Vec::new();
        let mut it = tokens.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.quick = true,
                "--seed" => {
                    args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42);
                }
                "--trace" => args.trace = it.next(),
                "--metrics" => args.metrics = it.next(),
                "--profile" => args.profile = true,
                _ => extras.push(a),
            }
        }
        (args, extras)
    }

    /// The usage line for the common flags, for binaries composing their
    /// own `--help` output.
    pub fn common_usage() -> &'static str {
        "--quick (tiny instances), --seed N, --trace PATH (Chrome trace \
         JSON), --metrics PATH (JSONL), --profile (per-kernel summary table)"
    }

    /// Whether any telemetry output was requested.
    pub fn telemetry_requested(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some() || self.profile
    }

    /// The dataset size class this run uses.
    pub fn size(&self) -> SizeClass {
        if self.quick {
            SizeClass::Tiny
        } else {
            SizeClass::Default
        }
    }

    /// Epoch budget scaling for quick mode.
    pub fn epochs(&self, full: u32) -> u32 {
        if self.quick {
            full.min(5)
        } else {
            full
        }
    }

    /// The three benchmark datasets at this run's size.
    pub fn datasets(&self) -> Vec<MfDataset> {
        vec![
            MfDataset::netflix(self.size(), self.seed),
            MfDataset::yahoo_music(self.size(), self.seed),
            MfDataset::hugewiki(self.size(), self.seed),
        ]
    }
}

/// Telemetry plumbing shared by all harness binaries: holds a
/// [`MemoryRecorder`] when any of `--trace` / `--metrics` / `--profile` was
/// passed (a no-op recorder otherwise), and flushes the requested exporters
/// at the end of the run.
pub struct TelemetrySink {
    recorder: Option<MemoryRecorder>,
    trace: Option<String>,
    metrics: Option<String>,
    profile: bool,
}

impl TelemetrySink {
    /// Build from parsed flags. The recorder only exists (and instrumented
    /// code only pays for event construction) when telemetry was requested.
    pub fn from_args(args: &HarnessArgs) -> TelemetrySink {
        TelemetrySink {
            recorder: args.telemetry_requested().then(MemoryRecorder::new),
            trace: args.trace.clone(),
            metrics: args.metrics.clone(),
            profile: args.profile,
        }
    }

    /// The recorder to hand to trainers ([`NOOP`] when telemetry is off).
    pub fn recorder(&self) -> &dyn Recorder {
        match &self.recorder {
            Some(m) => m,
            None => &NOOP,
        }
    }

    /// Whether events are being collected.
    pub fn enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// Write the requested trace/metrics files and print the `--profile`
    /// summary. Call once, after the workload.
    pub fn finish(&self) -> std::io::Result<()> {
        let Some(m) = &self.recorder else {
            return Ok(());
        };
        let events = m.events();
        if let Some(path) = &self.trace {
            write_chrome_trace(path, &events)?;
            eprintln!("wrote Chrome trace ({} events) to {path}", events.len());
        }
        if let Some(path) = &self.metrics {
            write_jsonl(path, &events)?;
            eprintln!("wrote JSONL metrics ({} events) to {path}", events.len());
        }
        if self.profile {
            println!("{}", render_summary(&summarize_events(&events)));
        }
        Ok(())
    }
}

/// Format seconds compactly for table output.
pub fn fmt_s(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}")
    } else if t >= 10.0 {
        format!("{t:.1}")
    } else {
        format!("{t:.2}")
    }
}

/// Print a rule line matching a header's width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_scales_precision() {
        assert_eq!(fmt_s(345.6), "346");
        assert_eq!(fmt_s(23.45), "23.4");
        assert_eq!(fmt_s(3.456), "3.46");
    }

    fn args(quick: bool) -> HarnessArgs {
        HarnessArgs {
            quick,
            seed: 1,
            trace: None,
            metrics: None,
            profile: false,
        }
    }

    #[test]
    fn parse_from_splits_known_and_extra_flags() {
        let tokens = ["--quick", "--qps", "500", "--seed", "7", "--fp16"]
            .into_iter()
            .map(String::from);
        let (args, extras) = HarnessArgs::parse_from(tokens);
        assert!(args.quick);
        assert_eq!(args.seed, 7);
        assert_eq!(extras, vec!["--qps", "500", "--fp16"]);
    }

    #[test]
    fn quick_mode_uses_tiny() {
        let a = args(true);
        assert_eq!(a.size(), SizeClass::Tiny);
        assert_eq!(a.epochs(30), 5);
        let b = args(false);
        assert_eq!(b.size(), SizeClass::Default);
        assert_eq!(b.epochs(30), 30);
    }

    #[test]
    fn sink_is_noop_unless_requested() {
        let off = TelemetrySink::from_args(&args(true));
        assert!(!off.enabled());
        assert!(!off.recorder().enabled());
        off.finish().unwrap();

        let mut a = args(true);
        a.profile = true;
        let on = TelemetrySink::from_args(&a);
        assert!(on.enabled());
        assert!(on.recorder().enabled());
    }
}
