//! Criterion ablations: tile-size sensitivity of the tiled rank-1 update
//! and the FP16 narrow/widen throughput that bounds Solution 4's benefit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use cumf_als::kernels::hermitian::tiled_rank1_update;
use cumf_numeric::f16::{narrow_slice, widen_slice, F16};
use cumf_numeric::stats::XorShift64;
use cumf_numeric::sym::packed_len;
use std::hint::black_box;

fn bench_tiles(c: &mut Criterion) {
    let f = 100usize;
    let mut rng = XorShift64::new(5);
    let theta: Vec<f32> = (0..f).map(|_| rng.next_f32() - 0.5).collect();
    let mut group = c.benchmark_group("tiled_rank1_f100");
    for &tile in &[2usize, 5, 10, 25, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &t| {
            let mut acc = vec![0.0f32; packed_len(f)];
            b.iter(|| {
                tiled_rank1_update(black_box(&mut acc), black_box(&theta), t);
                black_box(acc[0])
            })
        });
    }
    group.finish();
}

fn bench_f16(c: &mut Criterion) {
    let n = packed_len(100);
    let mut rng = XorShift64::new(6);
    let src: Vec<f32> = (0..n).map(|_| rng.next_f32() * 100.0).collect();
    let mut half = vec![F16::ZERO; n];
    let mut back = vec![0.0f32; n];
    let mut group = c.benchmark_group("f16_gram_matrix");
    group.throughput(Throughput::Bytes((n * 4) as u64));
    group.bench_function("narrow", |b| {
        b.iter(|| narrow_slice(black_box(&src), &mut half))
    });
    narrow_slice(&src, &mut half);
    group.bench_function("widen", |b| {
        b.iter(|| widen_slice(black_box(&half), &mut back))
    });
    group.finish();
}

criterion_group!(benches, bench_tiles, bench_f16);
criterion_main!(benches);
