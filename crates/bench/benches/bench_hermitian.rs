//! Criterion microbenchmarks of the get_hermitian functional kernel:
//! staged+tiled vs. plain rank-1 reference, across f.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cumf_als::kernels::hermitian::{hermitian_row, hermitian_row_reference, HermitianShape};
use cumf_numeric::dense::DenseMatrix;
use cumf_numeric::stats::XorShift64;
use cumf_numeric::sym::SymPacked;
use std::hint::black_box;

fn features(rows: usize, f: usize, seed: u64) -> DenseMatrix {
    let mut rng = XorShift64::new(seed);
    let mut m = DenseMatrix::zeros(rows, f);
    m.fill_with(|| rng.next_f32() - 0.5);
    m
}

fn bench_hermitian(c: &mut Criterion) {
    let mut group = c.benchmark_group("get_hermitian_row");
    for &f in &[32usize, 100] {
        let feats = features(1000, f, 7);
        let cols: Vec<u32> = (0..200u32).map(|i| (i * 5) % 1000).collect();
        let shape = HermitianShape::paper(f);
        group.bench_with_input(BenchmarkId::new("staged_tiled", f), &f, |b, _| {
            let mut staging = Vec::new();
            let mut acc = SymPacked::zeros(f);
            b.iter(|| {
                hermitian_row(
                    black_box(&cols),
                    &feats,
                    0.05,
                    &shape,
                    &mut staging,
                    &mut acc,
                );
                black_box(acc.get(0, 0))
            })
        });
        group.bench_with_input(BenchmarkId::new("reference_syr", f), &f, |b, _| {
            b.iter(|| black_box(hermitian_row_reference(black_box(&cols), &feats, 0.05, f)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hermitian);
criterion_main!(benches);
