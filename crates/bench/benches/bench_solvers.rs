//! Criterion microbenchmarks of the solve step: exact Cholesky/LU vs.
//! truncated CG (FP32 and FP16 storage) at the paper's f=100.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cumf_numeric::cg::cg_solve;
use cumf_numeric::cholesky::cholesky_solve;
use cumf_numeric::lu::lu_solve;
use cumf_numeric::stats::XorShift64;
use cumf_numeric::sym::SymPacked;
use std::hint::black_box;

fn spd(f: usize, seed: u64) -> SymPacked {
    let mut rng = XorShift64::new(seed);
    let mut a = SymPacked::zeros(f);
    for _ in 0..f + 4 {
        let v: Vec<f32> = (0..f).map(|_| rng.next_f32() - 0.5).collect();
        a.syr(&v);
    }
    a.add_diagonal(1.0);
    a
}

fn bench_solvers(c: &mut Criterion) {
    let f = 100usize;
    let a = spd(f, 3);
    let a16 = a.to_f16();
    let dense = a.to_dense();
    let b: Vec<f32> = (0..f).map(|i| (i as f32 - 50.0) * 0.01).collect();

    let mut group = c.benchmark_group("solve_f100");
    group.bench_function(BenchmarkId::new("lu_fp32", f), |bch| {
        bch.iter(|| black_box(lu_solve(black_box(&dense), &b).unwrap()))
    });
    group.bench_function(BenchmarkId::new("cholesky_fp32", f), |bch| {
        bch.iter(|| black_box(cholesky_solve(black_box(&a), &b).unwrap()))
    });
    group.bench_function(BenchmarkId::new("cg6_fp32", f), |bch| {
        bch.iter(|| {
            let mut x = vec![0.0f32; f];
            black_box(cg_solve(black_box(&a), &mut x, &b, 6, 1e-4))
        })
    });
    group.bench_function(BenchmarkId::new("cg6_fp16", f), |bch| {
        bch.iter(|| {
            let mut x = vec![0.0f32; f];
            black_box(cg_solve(black_box(&a16), &mut x, &b, 6, 1e-4))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
