//! Criterion benchmarks of the baseline substrates: blocked vs. Hogwild SGD
//! epochs and sparse-format conversion costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cumf_baselines::sgd::{blocked_epoch, hogwild_epoch, SgdConfig, SgdModel};
use cumf_datasets::{MfDataset, SizeClass};
use cumf_sparse::blocking::BlockGrid;
use cumf_sparse::csr::CsrMatrix;
use std::hint::black_box;

fn bench_sgd(c: &mut Criterion) {
    let data = MfDataset::netflix(SizeClass::Tiny, 11);
    let config = SgdConfig::new(16, 0.05);
    let grid = BlockGrid::partition(&data.train_coo, config.grid);
    let mut group = c.benchmark_group("sgd_epoch_tiny");
    group.throughput(Throughput::Elements(data.train_nnz() as u64));
    group.bench_function("blocked", |b| {
        let mut model = SgdModel::init(data.m(), data.n(), &config, 3.6);
        b.iter(|| blocked_epoch(black_box(&grid), &mut model, &config, 1))
    });
    group.bench_function("hogwild", |b| {
        let mut model = SgdModel::init(data.m(), data.n(), &config, 3.6);
        b.iter(|| hogwild_epoch(black_box(&data.train_coo), &mut model, &config, 1))
    });
    group.finish();
}

fn bench_sparse(c: &mut Criterion) {
    let data = MfDataset::netflix(SizeClass::Tiny, 12);
    let mut group = c.benchmark_group("sparse_conversions");
    group.throughput(Throughput::Elements(data.train_nnz() as u64));
    group.bench_function("coo_to_csr", |b| {
        b.iter(|| black_box(CsrMatrix::from_coo(black_box(&data.train_coo))))
    });
    group.bench_function("csr_transpose", |b| {
        b.iter(|| black_box(data.r.transpose()))
    });
    group.finish();
}

criterion_group!(benches, bench_sgd, bench_sparse);
criterion_main!(benches);
